package serve_test

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

// stubApplier records applied batches. Until gate is closed it blocks
// every apply call, signalling entry on entered — tests use this to
// build up a queue deterministically before the loop drains it.
type stubApplier struct {
	entered chan struct{} // buffered; signalled at each apply entry
	gate    chan struct{} // applies block here until closed

	mu      sync.Mutex
	applied []graph.Batch
	failOn  int // 1-based apply index that fails (0 = never)
}

func newStubApplier() *stubApplier {
	return &stubApplier{entered: make(chan struct{}, 16), gate: make(chan struct{})}
}

func (s *stubApplier) ApplyBatch(b graph.Batch) (core.Stats, error) {
	select {
	case s.entered <- struct{}{}:
	default:
	}
	<-s.gate
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = append(s.applied, b)
	if s.failOn != 0 && len(s.applied) == s.failOn {
		return core.Stats{}, errors.New("injected apply failure")
	}
	return core.Stats{}, nil
}

func (s *stubApplier) batches() []graph.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]graph.Batch(nil), s.applied...)
}

func edge(from, to graph.VertexID) graph.Edge { return graph.Edge{From: from, To: to, Weight: 1} }

func addBatch(es ...graph.Edge) graph.Batch { return graph.Batch{Add: es} }

// queueFirstBatch submits one batch and waits until the loop is inside
// its apply call, so everything submitted afterwards stays queued until
// the stub's gate opens.
func queueFirstBatch(t *testing.T, l *serve.Loop, s *stubApplier, b graph.Batch) *serve.Ticket {
	t.Helper()
	tk, err := l.Submit(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("apply loop never picked up the first batch")
	}
	return tk
}

func TestCoalescingMergesQueuedBatches(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	var tickets []*serve.Ticket
	for i := 2; i <= 4; i++ {
		tk, err := l.Submit(nil, addBatch(edge(0, graph.VertexID(i))))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	got := s.batches()
	if len(got) != 2 {
		t.Fatalf("applied %d batches, want 2 (first alone, rest coalesced)", len(got))
	}
	if len(got[1].Add) != 3 {
		t.Fatalf("coalesced batch has %d adds, want 3", len(got[1].Add))
	}
	for _, tk := range tickets {
		a, err := tk.Wait(nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Batches != 3 || a.Seq != 2 {
			t.Fatalf("ticket resolved to %+v, want Batches=3 Seq=2", a)
		}
	}
	if l.Seq() != 2 {
		t.Fatalf("Seq() = %d, want 2", l.Seq())
	}
}

// TestCoalescingGuardSplitsDeleteAfterAdd: a queued deletion of an edge
// key the accumulated batch adds must end the merge run — within one
// batch the deletion would match a pre-existing edge instance instead
// of the pending addition.
func TestCoalescingGuardSplitsDeleteAfterAdd(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16})
	queueFirstBatch(t, l, s, addBatch(edge(9, 9)))
	for _, b := range []graph.Batch{
		addBatch(edge(1, 2)),
		{Del: []graph.Edge{edge(1, 2)}}, // deletes the queued addition
		addBatch(edge(3, 4)),
	} {
		if _, err := l.Submit(nil, b); err != nil {
			t.Fatal(err)
		}
	}
	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	got := s.batches()
	if len(got) != 3 {
		t.Fatalf("applied %d batches, want 3 (guard splits before the delete)", len(got))
	}
	if len(got[1].Add) != 1 || len(got[1].Del) != 0 {
		t.Fatalf("second apply = %+v, want just the (1,2) addition", got[1])
	}
	if len(got[2].Del) != 1 || len(got[2].Add) != 1 {
		t.Fatalf("third apply = %+v, want the delete merged with the following add", got[2])
	}
}

func TestCoalescingRespectsSizeCap(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16, MaxBatchEdges: 2})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	for i := 0; i < 4; i++ {
		if _, err := l.Submit(nil, addBatch(edge(1, graph.VertexID(2+i)))); err != nil {
			t.Fatal(err)
		}
	}
	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	got := s.batches()
	if len(got) != 3 {
		t.Fatalf("applied %d batches, want 3 (cap of 2 edges per apply)", len(got))
	}
	for i, b := range got[1:] {
		if len(b.Add) != 2 {
			t.Fatalf("apply %d merged %d adds, want 2", i+1, len(b.Add))
		}
	}
}

func TestDisableCoalescing(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16, DisableCoalescing: true})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	for i := 0; i < 3; i++ {
		if _, err := l.Submit(nil, addBatch(edge(0, graph.VertexID(2+i)))); err != nil {
			t.Fatal(err)
		}
	}
	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	if got := s.batches(); len(got) != 4 {
		t.Fatalf("applied %d batches, want 4 (coalescing disabled)", len(got))
	}
}

func TestRejectPolicyFailsFastWhenFull(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 2, Policy: serve.Reject})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	for i := 0; i < 2; i++ {
		if _, err := l.Submit(nil, addBatch(edge(0, 2))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Submit(nil, addBatch(edge(0, 3))); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPolicyHonorsContext(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 1})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	if _, err := l.Submit(nil, addBatch(edge(0, 2))); err != nil {
		t.Fatal(err) // fills the queue
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := l.Submit(ctx, addBatch(edge(0, 3))); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	// The batch whose Submit timed out must not have been applied.
	for _, b := range s.batches() {
		for _, e := range b.Add {
			if e.To == 3 {
				t.Fatal("timed-out submit was applied")
			}
		}
	}
}

func TestCloseDrainsQueueAndRefusesNewSubmits(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	tk, err := l.Submit(nil, addBatch(edge(0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- l.Close(nil) }()
	close(s.gate)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(nil); err != nil {
		t.Fatalf("queued batch not applied during drain: %v", err)
	}
	if _, err := l.Submit(nil, addBatch(edge(0, 3))); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	total := 0
	for _, b := range s.batches() {
		total += len(b.Add)
	}
	if total != 2 {
		t.Fatalf("drained %d adds, want 2", total)
	}
}

func TestTerminalApplyFailure(t *testing.T) {
	s := newStubApplier()
	s.failOn = 1
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16, DisableCoalescing: true})
	t1 := queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	t2, err := l.Submit(nil, addBatch(edge(0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	close(s.gate)
	if a, _ := t1.Wait(nil); a.Err == nil {
		t.Fatal("failing apply resolved its ticket without error")
	}
	// The queued batch behind the failure is failed, not applied.
	if a, _ := t2.Wait(nil); a.Err == nil {
		t.Fatal("batch queued behind a terminal failure was resolved cleanly")
	}
	if err := l.Close(nil); err == nil {
		t.Fatal("Close returned nil after a terminal apply failure")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after terminal failure")
	}
	if _, err := l.Submit(nil, addBatch(edge(0, 3))); err == nil {
		t.Fatal("Submit accepted after terminal failure")
	}
	if got := s.batches(); len(got) != 1 {
		t.Fatalf("%d batches reached the applier, want 1", len(got))
	}
}

// TestPoisonBatchQuarantined: a malformed batch is accepted by Submit
// (validation is the apply goroutine's job), rejected on its ticket at
// dequeue, quarantined, and the loop keeps serving afterwards.
func TestPoisonBatchQuarantined(t *testing.T) {
	s := newStubApplier()
	close(s.gate)
	l := serve.NewLoop(s, serve.Options{Logger: slog.New(slog.DiscardHandler)})
	bad := graph.Batch{Add: []graph.Edge{{From: 0, To: graph.MaxVertexID + 1, Weight: 1}}}
	tk, err := l.Submit(nil, bad)
	if err != nil {
		t.Fatalf("Submit of poison batch rejected eagerly: %v", err)
	}
	a, err := tk.Wait(nil)
	if !errors.Is(err, graph.ErrInvalidEdge) || !errors.Is(err, graph.ErrInvalidBatch) {
		t.Fatalf("ticket err = %v, want ErrInvalidBatch/ErrInvalidEdge", err)
	}
	if a.Seq != 1 || a.Batches != 1 {
		t.Fatalf("quarantine Applied = %+v, want attempt Seq 1", a)
	}
	if len(s.batches()) != 0 {
		t.Fatal("poison batch reached the applier")
	}

	// The loop is not latched: a valid batch still applies, and the
	// quarantine retains the poison record.
	good, err := l.Submit(nil, addBatch(edge(0, 1)))
	if err != nil {
		t.Fatalf("Submit after quarantine: %v", err)
	}
	if _, err := good.Wait(nil); err != nil {
		t.Fatalf("apply after quarantine: %v", err)
	}
	q := l.Quarantined()
	if len(q) != 1 || l.QuarantinedTotal() != 1 {
		t.Fatalf("Quarantined() = %d records, total %d; want 1, 1", len(q), l.QuarantinedTotal())
	}
	if q[0].Seq != 1 || !errors.Is(q[0].Err, graph.ErrInvalidBatch) || q[0].At.IsZero() {
		t.Fatalf("quarantine record = %+v", q[0])
	}
	if len(q[0].Batch.Add) != 1 || q[0].Batch.Add[0].To != graph.MaxVertexID+1 {
		t.Fatalf("quarantine kept wrong batch: %+v", q[0].Batch)
	}
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.batches()) != 1 {
		t.Fatalf("%d batches reached the applier, want 1", len(s.batches()))
	}
}

func TestSyncWaitsForDrain(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	if _, err := l.Submit(nil, addBatch(edge(0, 2))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err := l.Sync(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sync with gated applier = %v, want DeadlineExceeded", err)
	}
	close(s.gate)
	if err := l.Sync(nil); err != nil {
		t.Fatal(err)
	}
	if l.Depth() != 0 {
		t.Fatalf("Depth() = %d after Sync", l.Depth())
	}
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}
}
