package serve_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// TestCoalescingExactlyAtCap pins the boundary condition: a merge that
// lands the accumulated batch exactly at MaxBatchEdges is allowed (the
// cap is inclusive), and the next batch — which would cross it — starts
// a new apply. Deletions count toward the size alongside additions.
func TestCoalescingExactlyAtCap(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16, MaxBatchEdges: 4})
	queueFirstBatch(t, l, s, addBatch(edge(9, 9)))

	t1, err := l.Submit(nil, addBatch(edge(0, 1), edge(0, 2))) // size 2
	if err != nil {
		t.Fatal(err)
	}
	// 1 add + 1 del = 2 edges; 2+2 == cap, so this still merges. The
	// deleted key (7,8) is not among the pending adds, so the guard
	// does not fire.
	t2, err := l.Submit(nil, graph.Batch{
		Add: []graph.Edge{edge(0, 3)},
		Del: []graph.Edge{edge(7, 8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := l.Submit(nil, addBatch(edge(0, 4))) // 4+1 > cap: new run
	if err != nil {
		t.Fatal(err)
	}

	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}

	got := s.batches()
	if len(got) != 3 {
		t.Fatalf("applied %d batches, want 3 (gate batch, exact-cap merge, overflow)", len(got))
	}
	if len(got[1].Add) != 3 || len(got[1].Del) != 1 {
		t.Fatalf("exact-cap apply = %d adds / %d dels, want 3/1", len(got[1].Add), len(got[1].Del))
	}
	if len(got[2].Add) != 1 || len(got[2].Del) != 0 {
		t.Fatalf("overflow apply = %d adds / %d dels, want 1/0", len(got[2].Add), len(got[2].Del))
	}
	for _, tk := range []*serve.Ticket{t1, t2} {
		a, err := tk.Wait(nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Seq != 2 || a.Batches != 2 {
			t.Fatalf("merged ticket resolved to %+v, want Seq=2 Batches=2", a)
		}
	}
	a, err := t3.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq != 3 || a.Batches != 1 {
		t.Fatalf("overflow ticket resolved to %+v, want Seq=3 Batches=1", a)
	}
}

// TestOversizedBatchAppliedWhole: a single submitted batch larger than
// MaxBatchEdges is applied whole, by itself — batches are never split,
// and nothing merges into an already-over-cap accumulator.
func TestOversizedBatchAppliedWhole(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16, MaxBatchEdges: 2})
	queueFirstBatch(t, l, s, addBatch(edge(9, 9)))

	big := addBatch(edge(0, 1), edge(0, 2), edge(0, 3), edge(0, 4), edge(0, 5))
	if _, err := l.Submit(nil, big); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Submit(nil, addBatch(edge(1, 2))); err != nil {
		t.Fatal(err)
	}

	close(s.gate)
	if err := l.Close(nil); err != nil {
		t.Fatal(err)
	}

	got := s.batches()
	if len(got) != 3 {
		t.Fatalf("applied %d batches, want 3 (gate batch, oversized alone, trailer)", len(got))
	}
	if len(got[1].Add) != 5 {
		t.Fatalf("oversized batch applied with %d adds, want all 5 in one call", len(got[1].Add))
	}
	if len(got[2].Add) != 1 {
		t.Fatalf("batch after the oversized one has %d adds, want 1 (not merged over cap)", len(got[2].Add))
	}
}

// TestSubmitBlockedOnFullQueueUnblocksOnClose: a Submit blocked waiting
// for queue space must not deadlock when the loop closes — it wakes and
// returns ErrClosed, and its batch never reaches the applier.
func TestSubmitBlockedOnFullQueueUnblocksOnClose(t *testing.T) {
	s := newStubApplier()
	l := serve.NewLoop(s, serve.Options{QueueDepth: 1})
	queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	if _, err := l.Submit(nil, addBatch(edge(0, 2))); err != nil {
		t.Fatal(err) // fills the queue
	}

	blocked := make(chan error, 1)
	go func() {
		_, err := l.Submit(nil, addBatch(edge(0, 3)))
		blocked <- err
	}()
	// Give the goroutine time to park in the queue-space wait; it must
	// still be blocked before Close.
	select {
	case err := <-blocked:
		t.Fatalf("Submit returned %v before Close with a full queue", err)
	case <-time.After(20 * time.Millisecond):
	}

	closed := make(chan error, 1)
	go func() { closed <- l.Close(nil) }()

	select {
	case err := <-blocked:
		if !errors.Is(err, serve.ErrClosed) {
			t.Fatalf("blocked Submit returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit stayed blocked after Close")
	}

	close(s.gate)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	for _, b := range s.batches() {
		for _, e := range b.Add {
			if e.To == 3 {
				t.Fatal("batch from the refused Submit was applied")
			}
		}
	}
}

// TestFailureTakesPrecedenceOverClosed: once the loop has failed
// terminally, Submit reports the failure — not ErrClosed — even after
// Close, so producers see why the writer died rather than a generic
// shutdown. Close stays idempotent and keeps returning the failure.
func TestFailureTakesPrecedenceOverClosed(t *testing.T) {
	s := newStubApplier()
	s.failOn = 1
	close(s.gate)
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16})
	tk, err := l.Submit(nil, addBatch(edge(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(nil); err == nil {
		t.Fatal("failing apply resolved its ticket without error")
	}

	first := l.Close(nil)
	if first == nil {
		t.Fatal("Close returned nil after a terminal failure")
	}
	if again := l.Close(nil); !errors.Is(again, first) && again.Error() != first.Error() {
		t.Fatalf("second Close returned %v, first returned %v", again, first)
	}

	_, err = l.Submit(nil, addBatch(edge(0, 2)))
	if err == nil {
		t.Fatal("Submit accepted after terminal failure")
	}
	if errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Submit after failure returned ErrClosed (%v), want the terminal failure", err)
	}
	if !errors.Is(err, l.Err()) && err.Error() != l.Err().Error() {
		t.Fatalf("Submit after failure returned %v, want the loop failure %v", err, l.Err())
	}
	if !strings.Contains(err.Error(), "injected apply failure") {
		t.Fatalf("failure %v does not surface the apply error", err)
	}
}

// TestTerminalFailureTicketOrdering pins how tickets resolve when an
// apply fails with more work queued behind it: the failing batch's
// ticket carries the apply's sequence number and the raw apply error,
// while every batch queued behind it is failed without ever reaching
// the applier — Seq 0, and the loop's wrapped terminal failure (which
// unwraps to the same root cause).
func TestTerminalFailureTicketOrdering(t *testing.T) {
	s := newStubApplier()
	s.failOn = 2
	l := serve.NewLoop(s, serve.Options{QueueDepth: 16, DisableCoalescing: true})
	t1 := queueFirstBatch(t, l, s, addBatch(edge(0, 1)))
	t2, err := l.Submit(nil, addBatch(edge(0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	t3, err := l.Submit(nil, addBatch(edge(0, 3)))
	if err != nil {
		t.Fatal(err)
	}
	t4, err := l.Submit(nil, addBatch(edge(0, 4)))
	if err != nil {
		t.Fatal(err)
	}
	close(s.gate)

	// The batch before the failure completes cleanly with its own seq.
	a1, err := t1.Wait(nil)
	if err != nil {
		t.Fatalf("batch before the failure resolved with %v", err)
	}
	if a1.Seq != 1 || a1.Err != nil {
		t.Fatalf("first ticket = %+v, want Seq=1 Err=nil", a1)
	}

	// The failing batch's ticket reports the apply that killed it.
	a2, err2 := t2.Wait(nil)
	if err2 == nil {
		t.Fatal("failing batch resolved without error")
	}
	if a2.Seq != 2 {
		t.Fatalf("failing ticket Seq = %d, want 2 (it did reach the applier)", a2.Seq)
	}

	// Batches queued behind the failure never reach the applier: their
	// tickets carry Seq 0 and the loop's terminal failure, which wraps
	// the apply error that actually occurred.
	for i, tk := range []*serve.Ticket{t3, t4} {
		a, err := tk.Wait(nil)
		if err == nil {
			t.Fatalf("ticket %d behind the failure resolved cleanly", i+3)
		}
		if a.Seq != 0 || a.Batches != 0 {
			t.Fatalf("ticket %d = %+v, want Seq=0 Batches=0 (never applied)", i+3, a)
		}
		if !errors.Is(err, err2) {
			t.Fatalf("ticket %d error %v does not wrap the root apply error %v", i+3, err, err2)
		}
		if !strings.Contains(err.Error(), "serve: apply:") {
			t.Fatalf("ticket %d error %v is not the wrapped terminal failure", i+3, err)
		}
	}

	if got := s.batches(); len(got) != 2 {
		t.Fatalf("%d batches reached the applier, want 2", len(got))
	}
	// Seq counts successful applies only; the failed attempt reported
	// attempt number 2 on its ticket without consuming it.
	if l.Seq() != 1 {
		t.Fatalf("Seq() = %d after terminal failure, want 1", l.Seq())
	}
	if err := l.Close(nil); err == nil {
		t.Fatal("Close returned nil after terminal failure")
	}
}
