package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/graph"
)

// frame builds one wire-format record the way Append does.
func frame(seq uint64, b graph.Batch) []byte {
	body := binary.LittleEndian.AppendUint64(nil, seq)
	body = appendBatch(body, b)
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	return append(hdr, body...)
}

// FuzzScan feeds arbitrary byte streams to the recovery scanner. Scan
// must never panic, must only error on a bad file header, and the valid
// prefix it reports must be stable: re-scanning exactly that prefix
// yields the same records and the same length (the idempotence the
// crash-recovery truncation step relies on).
func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(fileMagic[:])
	f.Add([]byte("GBWAL999junk"))
	one := append(append([]byte{}, fileMagic[:]...), frame(1, graph.Batch{
		Add: []graph.Edge{{From: 0, To: 1, Weight: 2.5}},
	})...)
	f.Add(one)
	two := append(append([]byte{}, one...), frame(2, graph.Batch{
		Del: []graph.Edge{{From: 3, To: 4, Weight: math.Inf(1)}},
	})...)
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	corrupted := append([]byte{}, two...)
	corrupted[len(fileMagic)+10] ^= 0xff // flip a body bit: CRC must catch it
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		records, valid, info, err := Scan(bytes.NewReader(data))
		if err != nil {
			return // only ErrNotWAL on arbitrary input; nothing else to check
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
		if len(records) != info.Records {
			t.Fatalf("%d records returned but info.Records = %d", len(records), info.Records)
		}
		if len(data) > 0 && valid == 0 && len(records) > 0 {
			t.Fatal("records recovered from a zero-length valid prefix")
		}
		again, validAgain, infoAgain, err := Scan(bytes.NewReader(data[:valid]))
		if err != nil {
			t.Fatalf("re-scanning the valid prefix failed: %v", err)
		}
		if validAgain != valid || infoAgain.Records != info.Records {
			t.Fatalf("re-scan of valid prefix: %d bytes/%d records, first scan said %d/%d",
				validAgain, infoAgain.Records, valid, info.Records)
		}
		for i := range again {
			if !fuzzRecordEqual(again[i], records[i]) {
				t.Fatalf("record %d differs on re-scan: %+v vs %+v", i, again[i], records[i])
			}
		}
	})
}

// FuzzDecodeBatch feeds arbitrary payloads to the batch decoder. It
// must never panic or over-allocate, and any payload it accepts must
// survive an encode/decode round trip bit-for-bit (NaN weights
// included).
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendBatch(nil, graph.Batch{}))
	f.Add(appendBatch(nil, graph.Batch{
		Add: []graph.Edge{{From: 1, To: 2, Weight: 0.5}, {From: 2, To: 2, Weight: math.NaN()}},
		Del: []graph.Edge{{From: 7, To: 0, Weight: -1}},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}) // huge uvarint count
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeBatch(data)
		if err != nil {
			return
		}
		re := appendBatch(nil, b)
		b2, err := decodeBatch(re)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded batch failed: %v", err)
		}
		if !fuzzBatchEqual(b, b2) {
			t.Fatalf("round trip changed the batch: %+v vs %+v", b, b2)
		}
	})
}

func fuzzRecordEqual(a, b Record) bool {
	return a.Seq == b.Seq && fuzzBatchEqual(a.Batch, b.Batch)
}

func fuzzBatchEqual(a, b graph.Batch) bool {
	return fuzzEdgesEqual(a.Add, b.Add) && fuzzEdgesEqual(a.Del, b.Del)
}

// fuzzEdgesEqual compares edge lists with NaN-safe weight comparison.
func fuzzEdgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To ||
			math.Float64bits(a[i].Weight) != math.Float64bits(b[i].Weight) {
			return false
		}
	}
	return true
}
