package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestCheckpointHeaderRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 42, 1<<63 + 7} {
		hdr := EncodeCheckpointHeader(seq)
		got, err := ParseCheckpointHeader(hdr[:])
		if err != nil {
			t.Fatalf("ParseCheckpointHeader(seq=%d): %v", seq, err)
		}
		if got != seq {
			t.Fatalf("round trip seq %d -> %d", seq, got)
		}
		got, err = ReadCheckpointHeader(bytes.NewReader(hdr[:]))
		if err != nil || got != seq {
			t.Fatalf("ReadCheckpointHeader(seq=%d) = %d, %v", seq, got, err)
		}
	}
}

func TestCheckpointHeaderRejectsCorruption(t *testing.T) {
	hdr := EncodeCheckpointHeader(9)
	cases := map[string][]byte{
		"truncated": hdr[:CheckpointHeaderSize-1],
		"empty":     nil,
	}
	badMagic := hdr
	badMagic[0] ^= 0xff
	cases["bad magic"] = badMagic[:]
	badSeq := EncodeCheckpointHeader(9)
	badSeq[10] ^= 0x01 // flips the covered seq without fixing the CRC
	cases["seq bit flip"] = badSeq[:]
	badCRC := EncodeCheckpointHeader(9)
	badCRC[17] ^= 0x40
	cases["crc bit flip"] = badCRC[:]

	for name, data := range cases {
		if _, err := ParseCheckpointHeader(data); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: ParseCheckpointHeader = %v, want ErrCheckpointCorrupt", name, err)
		}
	}
	if _, err := ReadCheckpointHeader(bytes.NewReader(hdr[:5])); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("short read: %v, want ErrCheckpointCorrupt", err)
	}
}

// TestCheckpointHeaderLeavesTailUnread pins the streaming contract:
// ReadCheckpointHeader consumes exactly CheckpointHeaderSize bytes, so
// the core snapshot that follows is still readable from the same
// stream.
func TestCheckpointHeaderLeavesTailUnread(t *testing.T) {
	hdr := EncodeCheckpointHeader(3)
	payload := []byte("snapshot-bytes-follow")
	r := bytes.NewReader(append(hdr[:], payload...))
	if _, err := ReadCheckpointHeader(r); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(rest, payload) {
		t.Fatalf("tail after header = %q, %v; want %q", rest, err, payload)
	}
}
