package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Batch payload encoding: a compact, deterministic binary layout —
// deliberately not gob, whose per-stream type preamble would bloat
// every record and whose decoder tolerates more malformed input than a
// log should.
//
//	payload = uvarint len(Add) edge* uvarint len(Del) edge*
//	edge    = u32 from | u32 to | u64 float64-bits(weight)
func appendBatch(buf []byte, b graph.Batch) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b.Add)))
	for _, e := range b.Add {
		buf = appendEdge(buf, e)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.Del)))
	for _, e := range b.Del {
		buf = appendEdge(buf, e)
	}
	return buf
}

func appendEdge(buf []byte, e graph.Edge) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, e.From)
	buf = binary.LittleEndian.AppendUint32(buf, e.To)
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
}

const edgeBytes = 16

// decodeBatch parses a payload produced by appendBatch. Every length is
// validated against the remaining bytes before allocating, so a record
// that passes its CRC but was encoded by a buggy writer still fails
// cleanly instead of panicking or over-allocating.
func decodeBatch(p []byte) (graph.Batch, error) {
	var b graph.Batch
	adds, p, err := decodeEdgeList(p, "add")
	if err != nil {
		return graph.Batch{}, err
	}
	dels, p, err := decodeEdgeList(p, "del")
	if err != nil {
		return graph.Batch{}, err
	}
	if len(p) != 0 {
		return graph.Batch{}, fmt.Errorf("wal: %d trailing bytes after batch payload", len(p))
	}
	b.Add, b.Del = adds, dels
	return b, nil
}

func decodeEdgeList(p []byte, what string) ([]graph.Edge, []byte, error) {
	n, used := binary.Uvarint(p)
	if used <= 0 {
		return nil, nil, fmt.Errorf("wal: bad %s count", what)
	}
	p = p[used:]
	if n > uint64(len(p))/edgeBytes {
		return nil, nil, fmt.Errorf("wal: %s count %d exceeds remaining payload (%d bytes)", what, n, len(p))
	}
	if n == 0 {
		return nil, p, nil
	}
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{
			From:   binary.LittleEndian.Uint32(p[0:4]),
			To:     binary.LittleEndian.Uint32(p[4:8]),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])),
		}
		p = p[edgeBytes:]
	}
	return edges, p, nil
}
