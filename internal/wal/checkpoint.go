// Checkpoint header framing, shared by the durable engine (which
// writes and loads checkpoints) and the replication layer (which ships
// them to followers for re-seeding). The header is a fixed 20-byte
// frame in front of the core engine snapshot: an 8-byte magic, the
// little-endian sequence number of the last batch the checkpoint
// covers, and a CRC32C over both. Keeping the codec here — next to the
// record frame codec the stream already shares — means a checkpoint
// that survives ReadCheckpointHeader on the follower is bit-for-bit a
// header the leader's checkpoint writer produced.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// CheckpointMagic opens every checkpoint file and every shipped
// checkpoint body.
var CheckpointMagic = [8]byte{'G', 'B', 'D', 'U', 'R', '0', '0', '1'}

// CheckpointHeaderSize is the fixed size of the checkpoint header:
// magic, covered sequence number, CRC32C.
const CheckpointHeaderSize = 8 + 8 + 4

// ErrCheckpointCorrupt reports a checkpoint header that failed
// validation: truncated, bad magic, or CRC mismatch. A follower
// fetching a checkpoint treats it like a torn connection (re-fetch); a
// local open treats it as unrecoverable corruption.
var ErrCheckpointCorrupt = errors.New("wal: corrupt checkpoint header")

// EncodeCheckpointHeader builds the header for a checkpoint covering
// sequence numbers 1..seq.
func EncodeCheckpointHeader(seq uint64) [CheckpointHeaderSize]byte {
	var hdr [CheckpointHeaderSize]byte
	copy(hdr[:8], CheckpointMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(hdr[:16], crcTable))
	return hdr
}

// ParseCheckpointHeader validates hdr and returns the sequence number
// the checkpoint covers. Errors wrap ErrCheckpointCorrupt.
func ParseCheckpointHeader(hdr []byte) (seq uint64, err error) {
	if len(hdr) < CheckpointHeaderSize {
		return 0, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header",
			ErrCheckpointCorrupt, len(hdr), CheckpointHeaderSize)
	}
	if [8]byte(hdr[:8]) != CheckpointMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, hdr[:8])
	}
	if got, want := crc32.Checksum(hdr[:16], crcTable), binary.LittleEndian.Uint32(hdr[16:20]); got != want {
		return 0, fmt.Errorf("%w: CRC32C %08x, header says %08x", ErrCheckpointCorrupt, got, want)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

// ReadCheckpointHeader consumes and validates a checkpoint header from
// r, returning the sequence number it covers. The core engine snapshot
// (with its own magic/version/CRC framing) follows in the stream.
func ReadCheckpointHeader(r io.Reader) (seq uint64, err error) {
	var hdr [CheckpointHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", ErrCheckpointCorrupt, err)
	}
	return ParseCheckpointHeader(hdr[:])
}
