package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func testBatch(i int) graph.Batch {
	return graph.Batch{
		Add: []graph.Edge{{From: graph.VertexID(i), To: graph.VertexID(i + 1), Weight: float64(i) + 0.5}},
		Del: []graph.Edge{{From: graph.VertexID(i + 2), To: graph.VertexID(i)}},
	}
}

// TestEncodeFrameMatchesAppend: the frames EncodeFrame produces are
// byte-identical to what Append writes, so a replication stream built
// from EncodeFrame is exactly the journal's on-disk record sequence.
func TestEncodeFrameMatchesAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	w, err := Open(path, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	want.Write(fileMagic[:])
	for i := 0; i < 5; i++ {
		b := testBatch(i)
		if err := w.Append(uint64(i+1), b); err != nil {
			t.Fatal(err)
		}
		want.Write(EncodeFrame(uint64(i+1), b))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("file bytes diverge from EncodeFrame output (%d vs %d bytes)", len(got), want.Len())
	}
}

// TestFrameReaderRoundTrip: a concatenation of encoded frames decodes
// back to the same records, ending with a clean io.EOF.
func TestFrameReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := make([]Record, 0, 8)
	for i := 0; i < 8; i++ {
		rec := Record{Seq: uint64(i + 10), Batch: testBatch(i)}
		buf.Write(EncodeFrame(rec.Seq, rec.Batch))
		want = append(want, rec)
	}
	fr := NewFrameReader(&buf)
	for i, w := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Seq != w.Seq || len(got.Batch.Add) != len(w.Batch.Add) || len(got.Batch.Del) != len(w.Batch.Del) {
			t.Fatalf("record %d = %+v, want %+v", i, got, w)
		}
		if got.Batch.Add[0] != w.Batch.Add[0] {
			t.Fatalf("record %d add = %+v, want %+v", i, got.Batch.Add[0], w.Batch.Add[0])
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestFrameReaderCorruption: torn headers, torn bodies, bit flips and
// implausible lengths all surface as ErrFrameCorrupt, never a panic or
// a silently wrong record.
func TestFrameReaderCorruption(t *testing.T) {
	frame := EncodeFrame(7, testBatch(1))
	cases := map[string][]byte{
		"torn header":  frame[:4],
		"torn body":    frame[:len(frame)-3],
		"bit flip":     append(append([]byte{}, frame[:12]...), frame[12]^0x40),
		"huge length":  {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
		"tiny length":  {1, 0, 0, 0, 0, 0, 0, 0, 9},
		"bad checksum": func() []byte { f := append([]byte{}, frame...); f[5] ^= 0xff; return f }(),
	}
	for name, data := range cases {
		fr := NewFrameReader(bytes.NewReader(data))
		if _, err := fr.Next(); !errors.Is(err, ErrFrameCorrupt) {
			t.Errorf("%s: err = %v, want ErrFrameCorrupt", name, err)
		}
	}
}

// TestTailReaderFollowsLiveLog: a TailReader attached to a WAL another
// handle is appending to sees exactly the appended records, reports
// not-yet-available at the live end, and detects a Reset truncation.
func TestTailReaderFollowsLiveLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	w, err := Open(path, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	tr, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, ok, err := tr.Next(); err != nil || ok {
		t.Fatalf("empty log: ok=%v err=%v, want not-available", ok, err)
	}
	for i := 0; i < 6; i++ {
		if err := w.Append(uint64(i+1), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		rec, ok, err := tr.Next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, i+1)
		}
	}
	if _, ok, err := tr.Next(); err != nil || ok {
		t.Fatalf("caught up: ok=%v err=%v, want not-available", ok, err)
	}

	// Truncation under the tail (checkpoint Reset) is detected, not
	// misread as valid frames.
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Next(); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("after Reset: err = %v, want ErrTailTruncated", err)
	}
}

// TestOpenTailRejectsNonWAL: a file without the magic is refused.
func TestOpenTailRejectsNonWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("definitely not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTail(path); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("err = %v, want ErrNotWAL", err)
	}
}
