// Package wal implements a crash-safe write-ahead log for graph
// mutation batches. A durable engine journals every batch here before
// mutating in-memory state; after a crash, recovery replays the log on
// top of the last checkpoint.
//
// On-disk format (all integers little-endian):
//
//	file   = magic ("GBWAL001") record*
//	record = u32 length | u32 crc32c(body) | body
//	body   = u64 seq | batch payload (see encode.go)
//
// Each record is written with a single Write call, so a crash leaves at
// most one torn record at the tail. Open scans the log, keeps the
// longest valid prefix, and truncates the rest: a torn or bit-flipped
// record ends recovery at the last valid record — it is never applied —
// and the file is repaired in place so appends continue from there.
//
// Records carry an application-assigned sequence number so a checkpoint
// taken at sequence S can ignore leftover records ≤ S if a crash hits
// between writing the checkpoint and truncating the log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/obs"
)

var fileMagic = [8]byte{'G', 'B', 'W', 'A', 'L', '0', '0', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-record length+CRC prefix.
const frameHeaderSize = 8

// maxRecordBytes bounds a record body so a corrupted length prefix
// cannot force a multi-gigabyte allocation during recovery.
const maxRecordBytes = 1 << 30

// ErrNotWAL reports a file whose header is not a WAL of this format —
// unlike a torn tail, this is not repairable by truncation and likely
// means a misconfigured path.
var ErrNotWAL = errors.New("wal: not a write-ahead log (bad file magic)")

// ErrDamaged reports an append attempted on a log whose tail is in an
// unknown state after a failed write or fsync. The log refuses further
// appends until Repair truncates it back to the last consistent length;
// a damaged log can still be scanned, reset, or closed.
var ErrDamaged = errors.New("wal: journal damaged, repair required")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncEveryBatch fsyncs after every append: no acknowledged batch is
	// ever lost. The default.
	SyncEveryBatch SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.Interval; a crash can
	// lose the batches acknowledged since the last sync, but recovery
	// still truncates cleanly to a valid prefix.
	SyncInterval
	// SyncNone never fsyncs explicitly (the OS flushes on its own
	// schedule). Fastest; durability limited to clean shutdowns.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryBatch:
		return "every"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return "unknown"
	}
}

// Options configures a WAL.
type Options struct {
	// Sync selects the durability/latency trade-off. Default SyncEveryBatch.
	Sync SyncPolicy
	// Interval is the maximum time between fsyncs under SyncInterval.
	// Default 100ms.
	Interval time.Duration
	// Metrics, when non-nil, receives journal instrumentation (append
	// counts and bytes, fsync latency, recovery results). Nil means
	// instrumentation is off.
	Metrics *obs.Registry
	// Flight, when non-nil, receives fsync/fsync-failed lifecycle events
	// with per-call latency, stamped with whatever trace the serve loop
	// has marked active. Nil means no flight events.
	Flight *flight.Recorder
	// Hooks are fault-injection points for tests; zero means none.
	Hooks Hooks
}

// Hooks let tests interpose on the log's I/O without reaching into its
// internals. Production code leaves them zero.
type Hooks struct {
	// WrapWriter, when non-nil, wraps the writer used for appends at
	// Open (e.g. a faultio.Writer). The header write and truncations go
	// to the file directly.
	WrapWriter func(io.Writer) io.Writer
	// BeforeSync, when non-nil, runs before every fsync; a non-nil
	// result fails the sync with that error (e.g. faultio.Fsync.Check).
	BeforeSync func() error
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// Record is one journaled mutation batch.
type Record struct {
	// Seq is the application-assigned, strictly increasing sequence
	// number (batch index since the stream began).
	Seq uint64
	// Batch is the journaled mutation set.
	Batch graph.Batch
}

// RecoveryInfo describes what Open found in an existing log.
type RecoveryInfo struct {
	// Records is the number of valid records recovered.
	Records int
	// Truncated reports that invalid data (a torn tail or a corrupt
	// record) followed the valid prefix and was cut off.
	Truncated bool
	// DroppedBytes counts the bytes discarded by that truncation.
	DroppedBytes int64
}

// WAL is a file-backed write-ahead log. Not safe for concurrent use;
// the durable engine serializes access the same way the core engine
// serializes ApplyBatch.
type WAL struct {
	f    *os.File
	w    io.Writer // == f in production; tests substitute a fault injector
	opts Options

	size      int64 // current valid file length
	lastFrame int64 // length of the most recent append's frame, for Unappend
	lastSync  time.Time
	recovered []Record
	info      RecoveryInfo
	met       walMetrics

	// Damage tracking: after a failed write, truncate, or fsync the
	// on-disk tail is in an unknown state. good remembers the last
	// length at which file contents, writer position, and durability all
	// agreed; Repair truncates back to it. A failed-but-fully-written
	// append also rolls back to good — the caller never acknowledged the
	// batch and will re-append it, so leaving the record would replay it
	// twice.
	damaged bool
	good    int64
}

// walMetrics holds the journal's metric handles; the zero value (nil
// handles) is the instrumentation-off state.
type walMetrics struct {
	appends          *obs.Counter
	appendBytes      *obs.Counter
	fsync            *obs.Histogram
	size             *obs.Gauge
	recoveredRecords *obs.Counter
	truncatedBytes   *obs.Counter
}

func newWALMetrics(r *obs.Registry) walMetrics {
	if r == nil {
		return walMetrics{}
	}
	return walMetrics{
		appends: r.Counter("graphbolt_wal_appends_total",
			"Batches journaled to the write-ahead log."),
		appendBytes: r.Counter("graphbolt_wal_append_bytes_total",
			"Bytes appended to the write-ahead log."),
		fsync: r.Histogram("graphbolt_wal_fsync_seconds",
			"Write-ahead log fsync latency.", obs.DefTimeBuckets),
		size: r.Gauge("graphbolt_wal_size_bytes",
			"Current write-ahead log length."),
		recoveredRecords: r.Counter("graphbolt_wal_recovered_records_total",
			"Valid records recovered from existing logs at open."),
		truncatedBytes: r.Counter("graphbolt_wal_truncated_bytes_total",
			"Bytes dropped when truncating torn or corrupt log tails."),
	}
}

// RegisterMetrics pre-creates the WAL metric set in r so the exposition
// endpoint shows every series (at zero) before a log is opened.
// Idempotent.
func RegisterMetrics(r *obs.Registry) {
	newWALMetrics(r)
}

// Open opens (creating if absent) the log at path, scans it, truncates
// any invalid suffix, and positions for appending. The records of the
// valid prefix are available from Recovered until the first Append.
func Open(path string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	w := &WAL{f: f, w: f, opts: opts, lastSync: time.Now(), met: newWALMetrics(opts.Metrics)}
	if err := w.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if wrap := opts.Hooks.WrapWriter; wrap != nil {
		w.w = wrap(f)
	}
	w.good = w.size
	w.met.recoveredRecords.Add(int64(w.info.Records))
	w.met.truncatedBytes.Add(w.info.DroppedBytes)
	w.met.size.Set(float64(w.size))
	return w, nil
}

// recover scans the file, truncates the invalid suffix, and seeks to
// the end of the valid prefix.
func (w *WAL) recover() error {
	fi, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	if fi.Size() == 0 {
		// Fresh log: write the header.
		if _, err := w.f.Write(fileMagic[:]); err != nil {
			return fmt.Errorf("wal: write header: %w", err)
		}
		w.size = int64(len(fileMagic))
		return nil
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	records, valid, info, err := Scan(w.f)
	if err != nil {
		return err
	}
	info.DroppedBytes = fi.Size() - valid
	info.Truncated = info.DroppedBytes > 0
	w.recovered, w.info, w.size = records, info, valid
	if info.Truncated {
		if err := w.f.Truncate(valid); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := w.f.Seek(valid, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	return nil
}

// Scan reads a WAL stream and returns the records of the longest valid
// prefix, the byte length of that prefix (including the file header),
// and what was found. Scanning stops — without error — at the first
// torn or corrupt record; only ErrNotWAL (wrong header) and read
// failures are errors.
func Scan(r io.Reader) ([]Record, int64, RecoveryInfo, error) {
	var info RecoveryInfo
	br := r
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			// Empty stream: valid, no records, header still to be written.
			return nil, 0, info, nil
		}
		return nil, 0, info, ErrNotWAL
	}
	if hdr != fileMagic {
		return nil, 0, info, ErrNotWAL
	}
	var records []Record
	valid := int64(len(fileMagic))
	for {
		var frame [frameHeaderSize]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			break // clean EOF or torn frame header: prefix ends here
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		wantCRC := binary.LittleEndian.Uint32(frame[4:8])
		if length < 8 || length > maxRecordBytes {
			break // corrupt length prefix
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			break // torn body
		}
		if crc32.Checksum(body, crcTable) != wantCRC {
			break // bit rot or torn overwrite
		}
		seq := binary.LittleEndian.Uint64(body[:8])
		batch, err := decodeBatch(body[8:])
		if err != nil {
			break // structurally invalid payload despite matching CRC
		}
		records = append(records, Record{Seq: seq, Batch: batch})
		valid += frameHeaderSize + int64(length)
		info.Records++
	}
	return records, valid, info, nil
}

// Recovered returns the records salvaged by Open, in append order.
// The slice is released on the first Append; copy it to keep it.
func (w *WAL) Recovered() []Record { return w.recovered }

// Recovery reports what Open found.
func (w *WAL) Recovery() RecoveryInfo { return w.info }

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 { return w.size }

// Append journals one batch under the given sequence number and applies
// the sync policy. The frame is written with a single Write call. Any
// failure — write error, short write, failed fsync — marks the log
// damaged: the on-disk tail is untrustworthy (possibly torn, possibly
// holding an unacknowledged record that a retry would duplicate), so
// further appends fail with ErrDamaged until Repair truncates back to
// the last consistent length.
func (w *WAL) Append(seq uint64, b graph.Batch) error {
	if w.damaged {
		return fmt.Errorf("wal: append seq %d: %w", seq, ErrDamaged)
	}
	w.recovered = nil
	start := w.size
	frame := EncodeFrame(seq, b)
	n, err := w.w.Write(frame)
	w.size += int64(n)
	if err != nil {
		w.markDamaged(start)
		return fmt.Errorf("wal: append seq %d: %w", seq, err)
	}
	if n < len(frame) {
		w.markDamaged(start)
		return fmt.Errorf("wal: append seq %d: short write (%d of %d bytes)", seq, n, len(frame))
	}
	w.lastFrame = int64(len(frame))
	w.met.appends.Inc()
	w.met.appendBytes.Add(int64(n))
	w.met.size.Set(float64(w.size))
	switch w.opts.Sync {
	case SyncEveryBatch:
		if err := w.Sync(); err != nil {
			w.markDamaged(start)
			return err
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.Interval {
			if err := w.Sync(); err != nil {
				w.markDamaged(start)
				return err
			}
		}
	}
	w.good = w.size
	return nil
}

// markDamaged latches the damaged state with good as the last length
// at which the log was known consistent.
func (w *WAL) markDamaged(good int64) {
	w.damaged, w.good, w.lastFrame = true, good, 0
}

// Damaged reports whether the log has refused to accept appends since a
// failed write or fsync and needs Repair.
func (w *WAL) Damaged() bool { return w.damaged }

// Repair truncates a damaged log back to its last consistent length and
// re-syncs, after which appends are accepted again. Repairing an
// undamaged log is a no-op. If the truncate, seek, or fsync itself
// fails the log stays damaged and Repair can be retried.
func (w *WAL) Repair() error {
	if !w.damaged {
		return nil
	}
	if err := w.f.Truncate(w.good); err != nil {
		return fmt.Errorf("wal: repair truncate: %w", err)
	}
	if _, err := w.f.Seek(w.good, io.SeekStart); err != nil {
		return fmt.Errorf("wal: repair seek: %w", err)
	}
	if err := w.Sync(); err != nil {
		return fmt.Errorf("wal: repair: %w", err)
	}
	w.size = w.good
	w.damaged = false
	w.met.size.Set(float64(w.size))
	return nil
}

// Unappend removes the record most recently written by Append — used
// when the in-memory apply that followed the journal write failed, so
// recovery does not replay a batch the engine could not process. Valid
// only immediately after a successful Append.
func (w *WAL) Unappend() error {
	if w.lastFrame == 0 {
		return fmt.Errorf("wal: nothing to unappend")
	}
	w.size -= w.lastFrame
	w.lastFrame = 0
	w.met.size.Set(float64(w.size))
	if err := w.f.Truncate(w.size); err != nil {
		w.markDamaged(w.size)
		return fmt.Errorf("wal: unappend: %w", err)
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.markDamaged(w.size)
		return fmt.Errorf("wal: unappend seek: %w", err)
	}
	if err := w.Sync(); err != nil {
		w.markDamaged(w.size)
		return err
	}
	w.good = w.size
	return nil
}

// Sync flushes the log to stable storage.
func (w *WAL) Sync() error {
	var start time.Time
	if w.met.fsync != nil || w.opts.Flight != nil {
		start = time.Now()
	}
	if hook := w.opts.Hooks.BeforeSync; hook != nil {
		if err := hook(); err != nil {
			w.opts.Flight.Fsync(time.Since(start), true)
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil {
		w.opts.Flight.Fsync(time.Since(start), true)
		return fmt.Errorf("wal: sync: %w", err)
	}
	if w.met.fsync != nil {
		w.met.fsync.Observe(time.Since(start).Seconds())
	}
	w.opts.Flight.Fsync(time.Since(start), false)
	w.lastSync = time.Now()
	return nil
}

// Reset empties the log after a checkpoint has made its records
// redundant, keeping the file header. A successful Reset also clears
// any damage: truncating to the header is the most thorough repair
// there is.
func (w *WAL) Reset() error {
	w.recovered, w.lastFrame = nil, 0
	w.size = int64(len(fileMagic))
	w.met.size.Set(float64(w.size))
	if err := w.f.Truncate(w.size); err != nil {
		w.markDamaged(w.size)
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.markDamaged(w.size)
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	if err := w.Sync(); err != nil {
		w.markDamaged(w.size)
		return err
	}
	w.damaged, w.good = false, w.size
	return nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: close sync: %w", err)
	}
	return w.f.Close()
}
