// Frame-level access to the WAL's record encoding, shared by the file
// log (wal.go) and the replication stream (internal/replica): the
// leader ships the exact frames Append writes, and the follower decodes
// them with the same CRC32C verification recovery uses. Keeping both
// ends on one codec is what makes the replication stream "CRC verified
// end-to-end" — a frame that survives FrameReader.Next is bit-for-bit a
// frame the leader's journal accepted.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/graph"
)

// ErrFrameCorrupt reports a frame that failed validation mid-stream: a
// torn header or body, an implausible length prefix, a CRC mismatch, or
// a payload that does not decode as a batch. File recovery treats this
// as the end of the valid prefix; a stream consumer treats it as a
// broken connection and resumes from its last applied sequence number.
var ErrFrameCorrupt = errors.New("wal: corrupt frame")

// ErrTailTruncated reports that the file under a TailReader shrank
// below the reader's position — the writer checkpointed and Reset the
// log, so the tail can no longer be followed from here.
var ErrTailTruncated = errors.New("wal: log truncated under tail reader")

// EncodeFrame returns the wire frame for one record: the u32 length +
// u32 crc32c header followed by the seq-prefixed batch payload — the
// exact bytes Append writes to the file and the leader ships to
// followers.
func EncodeFrame(seq uint64, b graph.Batch) []byte {
	// Capacity: frame header + seq + two uvarint counts + 16 bytes/edge.
	frame := make([]byte, frameHeaderSize, frameHeaderSize+8+20+edgeBytes*(len(b.Add)+len(b.Del)))
	frame = binary.LittleEndian.AppendUint64(frame, seq)
	frame = appendBatch(frame, b)
	body := frame[frameHeaderSize:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	return frame
}

// decodeFrameBody validates and decodes the body of a frame whose
// header (length, CRC) has already been checked.
func decodeFrameBody(body []byte) (Record, error) {
	if len(body) < 8 {
		return Record{}, fmt.Errorf("%w: body shorter than sequence prefix", ErrFrameCorrupt)
	}
	seq := binary.LittleEndian.Uint64(body[:8])
	batch, err := decodeBatch(body[8:])
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
	}
	return Record{Seq: seq, Batch: batch}, nil
}

// FrameReader iterates records from a stream of bare frames — the
// replication wire format, i.e. a WAL without its 8-byte file header.
// Every frame is CRC32C-verified before its payload is decoded.
type FrameReader struct {
	r io.Reader
}

// NewFrameReader returns a FrameReader over r. The reader does not
// buffer beyond the current frame, so r may be shared with other
// readers between Next calls (the replication stream interleaves
// one-byte message tags with frames on a single connection).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next returns the next record. It returns io.EOF at a clean frame
// boundary; every other failure — torn header or body, implausible
// length, CRC mismatch, undecodable payload — wraps ErrFrameCorrupt.
// Unlike Scan, which truncates a file at the first bad frame, Next
// surfaces the fault so a stream consumer can drop the connection and
// resume by sequence number.
func (fr *FrameReader) Next() (Record, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: torn frame header: %v", ErrFrameCorrupt, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if length < 8 || length > maxRecordBytes {
		return Record{}, fmt.Errorf("%w: implausible length %d", ErrFrameCorrupt, length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return Record{}, fmt.Errorf("%w: torn frame body: %v", ErrFrameCorrupt, err)
	}
	if crc32.Checksum(body, crcTable) != wantCRC {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return decodeFrameBody(body)
}

// TailReader follows a live WAL file read-only, yielding records as the
// writer appends them — the cold-start path for a replication log that
// attaches to an already-running journal. It reads with ReadAt at an
// explicit offset, so a frame the writer has only partially flushed is
// reported as not-yet-available and retried on the next call, never
// misread (the CRC catches the rest).
type TailReader struct {
	f   *os.File
	off int64 // offset of the next unread frame
}

// OpenTail opens the WAL at path for tailing, validating the file
// header. The writer may hold the file open concurrently.
func OpenTail(path string) (*TailReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open tail: %w", err)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || hdr != fileMagic {
		f.Close()
		return nil, ErrNotWAL
	}
	return &TailReader{f: f, off: int64(len(fileMagic))}, nil
}

// Next returns the next complete, valid record. ok is false when the
// valid prefix is exhausted for now — the writer may complete a partial
// frame later, so the caller should poll again. A file that shrank
// below the reader's position returns ErrTailTruncated (the writer
// checkpointed and Reset the log); a corrupt frame in the middle of the
// file returns ErrFrameCorrupt.
func (t *TailReader) Next() (rec Record, ok bool, err error) {
	fi, err := t.f.Stat()
	if err != nil {
		return Record{}, false, fmt.Errorf("wal: tail stat: %w", err)
	}
	if fi.Size() < t.off {
		return Record{}, false, ErrTailTruncated
	}
	var hdr [frameHeaderSize]byte
	if _, err := t.f.ReadAt(hdr[:], t.off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, false, nil // header not fully written yet
		}
		return Record{}, false, fmt.Errorf("wal: tail read: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if length < 8 || length > maxRecordBytes {
		return Record{}, false, fmt.Errorf("%w: implausible length %d at offset %d", ErrFrameCorrupt, length, t.off)
	}
	body := make([]byte, length)
	if _, err := t.f.ReadAt(body, t.off+frameHeaderSize); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, false, nil // body still being written
		}
		return Record{}, false, fmt.Errorf("wal: tail read: %w", err)
	}
	if crc32.Checksum(body, crcTable) != wantCRC {
		// Could be a frame mid-write whose header happens to be complete;
		// a *completed* bad frame would also fail recovery, so report it.
		return Record{}, false, fmt.Errorf("%w: checksum mismatch at offset %d", ErrFrameCorrupt, t.off)
	}
	rec, err = decodeFrameBody(body)
	if err != nil {
		return Record{}, false, err
	}
	t.off += frameHeaderSize + int64(length)
	return rec, true, nil
}

// Offset returns the file offset of the next unread frame.
func (t *TailReader) Offset() int64 { return t.off }

// Close releases the underlying file handle.
func (t *TailReader) Close() error { return t.f.Close() }
