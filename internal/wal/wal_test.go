package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/internal/graph"
)

func testBatches() []graph.Batch {
	return []graph.Batch{
		{Add: []graph.Edge{{From: 0, To: 1, Weight: 1.5}, {From: 2, To: 3, Weight: -2}}},
		{Del: []graph.Edge{{From: 0, To: 1}}}, // deletion-only
		{},                                    // empty no-op tick
		{
			Add: []graph.Edge{{From: 7, To: 7, Weight: 0.25}},
			Del: []graph.Edge{{From: 2, To: 3}, {From: 9, To: 4}},
		},
	}
}

func openAppend(t *testing.T, path string, batches []graph.Batch) {
	t.Helper()
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if err := w.Append(uint64(i+1), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func recordsEqual(t *testing.T, got []Record, want []graph.Batch, firstSeq uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != firstSeq+uint64(i) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, firstSeq+uint64(i))
		}
		if !reflect.DeepEqual(r.Batch.Add, want[i].Add) && !(len(r.Batch.Add) == 0 && len(want[i].Add) == 0) {
			t.Errorf("record %d adds = %v, want %v", i, r.Batch.Add, want[i].Add)
		}
		if !reflect.DeepEqual(r.Batch.Del, want[i].Del) && !(len(r.Batch.Del) == 0 && len(want[i].Del) == 0) {
			t.Errorf("record %d dels = %v, want %v", i, r.Batch.Del, want[i].Del)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	batches := testBatches()
	openAppend(t, path, batches)

	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recordsEqual(t, w.Recovered(), batches, 1)
	if info := w.Recovery(); info.Truncated || info.Records != len(batches) {
		t.Fatalf("recovery info %+v after clean shutdown", info)
	}
	// Appends continue after recovery.
	if err := w.Append(uint64(len(batches)+1), graph.Batch{Add: []graph.Edge{{From: 1, To: 2, Weight: 3}}}); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	batches := testBatches()
	openAppend(t, path, batches)

	// Crash mid-append: route the next record through a writer that dies
	// partway through the frame, leaving a torn tail like a power cut.
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.w = faultio.NewWriter(w.f).FailAfter(5, nil)
	err = w.Append(uint64(len(batches)+1), graph.Batch{Add: []graph.Edge{{From: 5, To: 6, Weight: 1}}})
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("append through failing writer: %v", err)
	}
	w.f.Close() // simulate the crash: no Close bookkeeping

	reopened, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recordsEqual(t, reopened.Recovered(), batches, 1)
	info := reopened.Recovery()
	if !info.Truncated || info.DroppedBytes != 5 {
		t.Fatalf("recovery info %+v, want truncation of the 5 torn bytes", info)
	}
	// The file must be repaired in place: a third open sees a clean log.
	reopened.Close()
	again, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Recovery().Truncated {
		t.Fatal("repair did not persist")
	}
}

func TestBitFlippedRecordStopsRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	batches := testBatches()
	openAppend(t, path, batches)

	// Rewrite the whole log through a bit-flipping writer, corrupting one
	// byte inside the second record's body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: 8 header + record1 + record2... find record 2's body start.
	rec1Len := int64(8 + 8 + recordBodyLen(batches[0]))
	flipAt := 8 + rec1Len + frameHeaderSize + 3 // a few bytes into record 2's body
	tmp, err := os.Create(path + ".flipped")
	if err != nil {
		t.Fatal(err)
	}
	fw := faultio.NewWriter(tmp).FlipBit(flipAt, 2)
	if _, err := fw.Write(data); err != nil {
		t.Fatal(err)
	}
	tmp.Close()

	w, err := Open(path+".flipped", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Recovery must stop at the last valid record before the corruption
	// and must not surface the corrupt batch or anything after it.
	recordsEqual(t, w.Recovered(), batches[:1], 1)
	if info := w.Recovery(); !info.Truncated {
		t.Fatalf("recovery info %+v, want truncation", info)
	}
}

// recordBodyLen mirrors the frame layout for test offset arithmetic:
// body = u64 seq + batch payload; the frame adds frameHeaderSize.
func recordBodyLen(b graph.Batch) int {
	return len(appendBatch(nil, b))
}

func TestResetEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	openAppend(t, path, testBatches())
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	// Appends after Reset land at the file head.
	if err := w.Append(42, graph.Batch{Add: []graph.Edge{{From: 1, To: 0, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	reopened, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recs := reopened.Recovered()
	if len(recs) != 1 || recs[0].Seq != 42 {
		t.Fatalf("after reset+append, recovered %+v", recs)
	}
}

func TestUnappendRemovesLastRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, testBatches()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, testBatches()[3]); err != nil {
		t.Fatal(err)
	}
	if err := w.Unappend(); err != nil {
		t.Fatal(err)
	}
	// Unappend is single-shot.
	if err := w.Unappend(); err == nil {
		t.Fatal("double Unappend succeeded")
	}
	w.Close()

	reopened, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recs := reopened.Recovered()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("after unappend, recovered %+v", recs)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("definitely not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("err = %v, want ErrNotWAL", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncEveryBatch, SyncInterval, SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, err := Open(path, Options{Sync: p, Interval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := w.Append(uint64(i+1), graph.Batch{Add: []graph.Edge{{From: 0, To: 1, Weight: 1}}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := Open(path, Options{Sync: p})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			if got := len(reopened.Recovered()); got != 10 {
				t.Fatalf("recovered %d records, want 10", got)
			}
		})
	}
}

// TestShortWriteDamagesAndRepairs drives the degraded-mode contract
// end to end through the public hooks: a torn append latches ErrDamaged,
// Repair truncates back to consistency, and the retried record is the
// only thing recovery sees.
func TestShortWriteDamagesAndRepairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	openAppend(t, path, testBatches()[:1])

	var inj *faultio.Writer
	w, err := Open(path, Options{Hooks: Hooks{
		WrapWriter: func(under io.Writer) io.Writer {
			inj = faultio.NewWriter(under)
			return inj
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if w.Damaged() {
		t.Fatal("fresh log reports damage")
	}

	inj.ShortNext(3, nil)
	if err := w.Append(2, testBatches()[3]); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("torn append: %v", err)
	}
	if !w.Damaged() {
		t.Fatal("torn append did not damage the log")
	}
	// Damaged log fails fast without touching the file.
	if err := w.Append(2, testBatches()[3]); !errors.Is(err, ErrDamaged) {
		t.Fatalf("append on damaged log: %v, want ErrDamaged", err)
	}

	if err := w.Repair(); err != nil {
		t.Fatal(err)
	}
	if w.Damaged() {
		t.Fatal("still damaged after Repair")
	}
	if err := w.Append(2, testBatches()[3]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recordsEqual(t, reopened.Recovered(), []graph.Batch{testBatches()[0], testBatches()[3]}, 1)
	if reopened.Recovery().Truncated {
		t.Fatal("repair left a torn tail for recovery to clean up")
	}
}

// TestFsyncFailureRollsBackAppend pins the duplicate-replay hazard: a
// record fully written but whose fsync failed was never acknowledged,
// so Repair must drop it — the caller's retry re-appends it, and
// recovery must see the sequence exactly once.
func TestFsyncFailureRollsBackAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	fsync := faultio.NewFsync()
	w, err := Open(path, Options{Hooks: Hooks{BeforeSync: fsync.Check}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, testBatches()[0]); err != nil {
		t.Fatal(err)
	}

	fsync.FailEveryKth(1, nil)
	if err := w.Append(2, testBatches()[1]); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("append with failing fsync: %v", err)
	}
	if !w.Damaged() {
		t.Fatal("failed fsync did not damage the log")
	}
	fsync.FailEveryKth(0, nil)

	if err := w.Repair(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, testBatches()[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recordsEqual(t, reopened.Recovered(), testBatches()[:2], 1)
}

// TestRepairWhileFsyncStillFailing pins retryability: Repair under a
// still-failing fsync reports the error, leaves the log damaged, and
// succeeds once the fault clears.
func TestRepairWhileFsyncStillFailing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	fsync := faultio.NewFsync()
	w, err := Open(path, Options{Hooks: Hooks{BeforeSync: fsync.Check}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fsync.FailEveryKth(1, nil)
	if err := w.Append(1, testBatches()[0]); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("append: %v", err)
	}
	if err := w.Repair(); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("Repair under persistent fault: %v", err)
	}
	if !w.Damaged() {
		t.Fatal("failed Repair cleared the damage flag")
	}
	fsync.FailEveryKth(0, nil)
	if err := w.Repair(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, testBatches()[0]); err != nil {
		t.Fatal(err)
	}
}

func TestRepairUndamagedIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Repair(); err != nil {
		t.Fatal(err)
	}
}

// TestResetClearsDamage: truncating to the header is itself a repair.
func TestResetClearsDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var inj *faultio.Writer
	w, err := Open(path, Options{Hooks: Hooks{
		WrapWriter: func(under io.Writer) io.Writer {
			inj = faultio.NewWriter(under)
			return inj
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	inj.ShortNext(2, nil)
	if err := w.Append(1, testBatches()[0]); err == nil {
		t.Fatal("torn append succeeded")
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Damaged() {
		t.Fatal("Reset left the log damaged")
	}
	if err := w.Append(2, testBatches()[1]); err != nil {
		t.Fatal(err)
	}
}

func TestScanEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(w.Recovered()) != 0 || w.Recovery().Truncated {
		t.Fatalf("fresh log reports %+v", w.Recovery())
	}
}
