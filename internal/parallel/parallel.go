// Package parallel provides the shared-memory parallel execution
// primitives used throughout the GraphBolt engine: grained parallel-for
// loops, atomic float operations, striped spinlocks for per-vertex
// aggregate updates, and per-worker counters.
//
// The primitives intentionally mirror what a Ligra-style runtime needs:
// flat fork-join loops over vertex and edge ranges, with no allocation on
// the steady-state path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of loop indices a worker claims at a
// time. Small enough to balance skewed per-index work (high-degree
// vertices), large enough to amortize the atomic fetch-add per claim.
const DefaultGrain = 512

// Procs returns the degree of parallelism loops run at.
func Procs() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0, n) across Procs() goroutines using
// dynamic chunk self-scheduling with DefaultGrain granularity. It blocks
// until every index has been processed. For small n it runs inline.
func For(n int, body func(i int)) {
	ForGrain(n, DefaultGrain, body)
}

// ForGrain is For with an explicit grain size.
//
// A panic in the body is recovered inside the worker (an unrecovered
// panic in a spawned goroutine would kill the process), the remaining
// chunks are cancelled, and after all workers drain the first panic is
// re-raised on the calling goroutine as a *PanicError carrying the
// offending index range. The same holds for ForRange and ForWorker.
func ForGrain(n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	p := Procs()
	if grain <= 0 {
		grain = DefaultGrain
	}
	m := loopMet.Load()
	var box panicBox
	if p == 1 || n <= grain {
		box.run(0, n, func() {
			for i := 0; i < n; i++ {
				body(i)
			}
		})
		m.observeInline()
		box.rethrow()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	if needed := (n + grain - 1) / grain; p > needed {
		p = needed
	}
	var ls loopStat
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			var claims int64
			if m != nil {
				defer func() { ls.record(claims) }()
			}
			for !box.tripped.Load() {
				start := int(next.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				claims++
				end := start + grain
				if end > n {
					end = n
				}
				box.run(start, end, func() {
					for i := start; i < end; i++ {
						body(i)
					}
				})
			}
		}()
	}
	wg.Wait()
	m.observeLoop(p, &ls)
	box.rethrow()
}

// ForRange runs body(start, end) over disjoint subranges covering [0, n),
// letting the body iterate a contiguous chunk itself. Useful when the body
// wants to keep per-chunk locals (e.g. a worker-private counter).
func ForRange(n, grain int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Procs()
	m := loopMet.Load()
	var box panicBox
	if p == 1 || n <= grain {
		box.run(0, n, func() { body(0, n) })
		m.observeInline()
		box.rethrow()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	if needed := (n + grain - 1) / grain; p > needed {
		p = needed
	}
	var ls loopStat
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			var claims int64
			if m != nil {
				defer func() { ls.record(claims) }()
			}
			for !box.tripped.Load() {
				start := int(next.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				claims++
				end := start + grain
				if end > n {
					end = n
				}
				box.run(start, end, func() { body(start, end) })
			}
		}()
	}
	wg.Wait()
	m.observeLoop(p, &ls)
	box.rethrow()
}

// ForWorker runs body(worker, start, end) like ForRange but also passes a
// dense worker id in [0, Workers()) so the body can index per-worker state
// without false sharing on a shared counter.
func ForWorker(n, grain int, body func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Procs()
	m := loopMet.Load()
	var box panicBox
	if p == 1 || n <= grain {
		box.run(0, n, func() { body(0, 0, n) })
		m.observeInline()
		box.rethrow()
		return
	}
	if needed := (n + grain - 1) / grain; p > needed {
		p = needed
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var ls loopStat
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(worker int) {
			defer wg.Done()
			var claims int64
			if m != nil {
				defer func() { ls.record(claims) }()
			}
			for !box.tripped.Load() {
				start := int(next.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				claims++
				end := start + grain
				if end > n {
					end = n
				}
				box.run(start, end, func() { body(worker, start, end) })
			}
		}(w)
	}
	wg.Wait()
	m.observeLoop(p, &ls)
	box.rethrow()
}

// Workers returns an upper bound on the worker ids ForWorker passes to its
// body. Always ≥ 1.
func Workers() int {
	p := Procs()
	if p < 1 {
		return 1
	}
	return p
}
