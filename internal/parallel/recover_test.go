package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForWorkerPanickingKernel is the "deliberately panicking kernel"
// case: one bad index out of many must surface as a *PanicError on the
// calling goroutine (with the vertex range that caused it) instead of
// killing the process, and the loop must still terminate.
func TestForWorkerPanickingKernel(t *testing.T) {
	const n = 100_000
	const bad = 54321
	err := Catch(func() {
		ForWorker(n, 64, func(worker, start, end int) {
			for i := start; i < end; i++ {
				if i == bad {
					panic(fmt.Sprintf("kernel exploded at %d", i))
				}
			}
		})
	})
	if err == nil {
		t.Fatal("panicking kernel returned nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PanicError: %v", err, err)
	}
	if !(pe.Start <= bad && bad < pe.End) {
		t.Errorf("PanicError range [%d,%d) does not contain the panicking index %d", pe.Start, pe.End, bad)
	}
	if !strings.Contains(pe.Error(), "kernel exploded") {
		t.Errorf("PanicError.Error() = %q, want the panic value included", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
}

// TestForGrainPanicInlinePath covers the small-n inline path, which
// must behave identically to the parallel path.
func TestForGrainPanicInlinePath(t *testing.T) {
	err := Catch(func() {
		ForGrain(4, 512, func(i int) {
			if i == 2 {
				panic("inline boom")
			}
		})
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("inline panic surfaced as %T (%v), want *PanicError", err, err)
	}
	if pe.Start != 0 || pe.End != 4 {
		t.Errorf("inline PanicError range [%d,%d), want [0,4)", pe.Start, pe.End)
	}
}

// TestForRangePanicQuiescence checks that the loop drains every worker
// before re-raising: once Catch returns, no body invocation is still in
// flight (the engine relies on this to leave no goroutine mutating
// state behind an error return).
func TestForRangePanicQuiescence(t *testing.T) {
	const n = 1 << 18
	var inFlight, maxSeen atomic.Int64
	err := Catch(func() {
		ForRange(n, 16, func(start, end int) {
			cur := inFlight.Add(1)
			for {
				prev := maxSeen.Load()
				if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
					break
				}
			}
			if start == 0 {
				inFlight.Add(-1)
				panic("first chunk dies")
			}
			inFlight.Add(-1)
		})
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := inFlight.Load(); got != 0 {
		t.Errorf("%d bodies still in flight after Catch returned", got)
	}
	if maxSeen.Load() == 0 {
		t.Error("instrumentation never ran")
	}
}

// TestCatchPassthrough: no panic means nil error, and a panic value
// that already is an error stays reachable through errors.Is.
func TestCatchPassthrough(t *testing.T) {
	if err := Catch(func() {}); err != nil {
		t.Fatalf("Catch(noop) = %v", err)
	}
	sentinel := errors.New("sentinel")
	err := Catch(func() {
		For(10_000, func(i int) {
			if i == 7000 {
				panic(sentinel)
			}
		})
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false; err = %v", err)
	}
}
