package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 511, 512, 513, 100_000} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForGrainSmallGrain(t *testing.T) {
	n := 10_000
	var sum atomic.Int64
	ForGrain(n, 3, func(i int) { sum.Add(int64(i)) })
	want := int64(n) * int64(n-1) / 2
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestForGrainZeroGrainDefaults(t *testing.T) {
	n := 2000
	var sum atomic.Int64
	ForGrain(n, 0, func(i int) { sum.Add(1) })
	if got := sum.Load(); got != int64(n) {
		t.Fatalf("visited %d indices, want %d", got, n)
	}
}

func TestForRangeDisjointCover(t *testing.T) {
	n := 54321
	seen := make([]int32, n)
	ForRange(n, 100, func(start, end int) {
		if start < 0 || end > n || start > end {
			t.Errorf("bad range [%d,%d)", start, end)
			return
		}
		for i := start; i < end; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	n := 20_000
	max := Workers()
	var bad atomic.Int64
	ForWorker(n, 64, func(worker, start, end int) {
		if worker < 0 || worker >= max {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("worker ids escaped [0,%d)", max)
	}
}

func TestForNegativeN(t *testing.T) {
	called := false
	For(-5, func(i int) { called = true })
	if called {
		t.Fatal("body called for negative n")
	}
}

func TestAddFloat64Concurrent(t *testing.T) {
	var bits uint64
	StoreFloat64(&bits, 0)
	n := 100_000
	For(n, func(i int) { AddFloat64(&bits, 0.5) })
	if got := LoadFloat64(&bits); got != float64(n)/2 {
		t.Fatalf("sum = %v, want %v", got, float64(n)/2)
	}
}

func TestMulFloat64Concurrent(t *testing.T) {
	var bits uint64
	StoreFloat64(&bits, 1)
	// 2^20 via 20 doublings, concurrently interleaved with 20 halvings:
	// the result must be exactly 1 since multiplication here is
	// order-independent for powers of two.
	For(40, func(i int) {
		if i%2 == 0 {
			MulFloat64(&bits, 2)
		} else {
			MulFloat64(&bits, 0.5)
		}
	})
	if got := LoadFloat64(&bits); got != 1 {
		t.Fatalf("product = %v, want 1", got)
	}
}

func TestMinFloat64(t *testing.T) {
	var bits uint64
	StoreFloat64(&bits, math.Inf(1))
	vals := []float64{5, 3, 9, 1, 7, 1, 2}
	For(len(vals), func(i int) { MinFloat64(&bits, vals[i]) })
	if got := LoadFloat64(&bits); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if MinFloat64(&bits, 4) {
		t.Fatal("MinFloat64 claimed to lower value with larger input")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	ForWorker(100_000, 128, func(worker, start, end int) {
		c.Add(worker, int64(end-start))
	})
	if got := c.Sum(); got != 100_000 {
		t.Fatalf("counter sum = %d, want 100000", got)
	}
	c.Reset()
	if got := c.Sum(); got != 0 {
		t.Fatalf("counter after reset = %d", got)
	}
}

func TestStripedLocksExclusion(t *testing.T) {
	locks := NewStripedLocks()
	counts := make([]int, 64)
	For(64_000, func(i int) {
		k := uint32(i % 64)
		locks.Lock(k)
		counts[k]++
		locks.Unlock(k)
	})
	for k, c := range counts {
		if c != 1000 {
			t.Fatalf("slot %d count = %d, want 1000", k, c)
		}
	}
}

// Property: parallel float sum equals sequential sum exactly when all
// inputs are integral (no rounding ambiguity regardless of order).
func TestQuickParallelSumOfInts(t *testing.T) {
	f := func(raw []int16) bool {
		var bits uint64
		var want float64
		for _, v := range raw {
			want += float64(v)
		}
		For(len(raw), func(i int) { AddFloat64(&bits, float64(raw[i])) })
		return LoadFloat64(&bits) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// withProcs runs fn under an inflated GOMAXPROCS so the worker-spawning
// paths execute even on single-CPU machines (concurrency without
// parallelism still schedules all goroutines).
func withProcs(t *testing.T, procs int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func TestForMultiProcCoversAllIndices(t *testing.T) {
	withProcs(t, 8, func() {
		n := 100_000
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d visited %d times", i, c)
			}
		}
	})
}

func TestForRangeMultiProc(t *testing.T) {
	withProcs(t, 8, func() {
		n := 54_321
		var total atomic.Int64
		ForRange(n, 100, func(start, end int) {
			total.Add(int64(end - start))
		})
		if total.Load() != int64(n) {
			t.Fatalf("covered %d of %d", total.Load(), n)
		}
	})
}

func TestForWorkerMultiProc(t *testing.T) {
	withProcs(t, 8, func() {
		c := NewCounter()
		n := 80_000
		ForWorker(n, 64, func(worker, start, end int) {
			if worker < 0 || worker >= Workers() {
				t.Errorf("worker id %d out of range", worker)
			}
			c.Add(worker, int64(end-start))
		})
		if c.Sum() != int64(n) {
			t.Fatalf("sum = %d, want %d", c.Sum(), n)
		}
	})
}

func TestForGrainMultiProcSmallGrain(t *testing.T) {
	withProcs(t, 8, func() {
		var sum atomic.Int64
		ForGrain(10_000, 7, func(i int) { sum.Add(int64(i)) })
		want := int64(10_000) * 9_999 / 2
		if sum.Load() != want {
			t.Fatalf("sum = %d, want %d", sum.Load(), want)
		}
	})
}

func TestAtomicOpsMultiProc(t *testing.T) {
	withProcs(t, 8, func() {
		var bits uint64
		StoreFloat64(&bits, 0)
		For(200_000, func(i int) { AddFloat64(&bits, 0.25) })
		if got := LoadFloat64(&bits); got != 50_000 {
			t.Fatalf("sum = %v", got)
		}
	})
}
