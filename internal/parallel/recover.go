package parallel

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a parallel loop body. Without
// recovery, a panic inside one of the loop's worker goroutines would
// kill the whole process (no caller can defer around another
// goroutine); the loop primitives instead capture the first panic,
// cancel the remaining work, and re-raise it as a *PanicError on the
// calling goroutine, where a serving layer can recover it and degrade
// to an error response.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Start and End delimit the loop index range ([Start,End)) the
	// panicking worker was processing — for the engine, the vertex range
	// whose vertex function misbehaved.
	Start, End int
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error formats the panic with the offending index range.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in worker over indices [%d,%d): %v", e.Start, e.End, e.Value)
}

// Unwrap exposes the panic value when it already was an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Catch runs f and converts a panic escaping it — including the
// *PanicError the loop primitives re-raise — into a returned error.
// This is the boundary helper serving layers use around engine calls.
func Catch(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: r, Start: -1, End: -1, Stack: debug.Stack()}
		}
	}()
	f()
	return nil
}

// panicBox collects the first panic across a loop's workers and lets
// the claim loops observe that work should stop.
type panicBox struct {
	mu      sync.Mutex
	pe      *PanicError
	tripped atomic.Bool
}

// run executes fn for the index range [start,end), recovering a panic
// into the box. Returns false when the loop should stop claiming work.
func (b *panicBox) run(start, end int, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			b.mu.Lock()
			if b.pe == nil {
				b.pe = &PanicError{Value: r, Start: start, End: end, Stack: debug.Stack()}
			}
			b.mu.Unlock()
			b.tripped.Store(true)
		}
	}()
	fn()
}

// rethrow re-raises the recorded panic (if any) on the caller's
// goroutine, after all workers have exited.
func (b *panicBox) rethrow() {
	if b.tripped.Load() {
		b.mu.Lock()
		pe := b.pe
		b.mu.Unlock()
		panic(pe)
	}
}
