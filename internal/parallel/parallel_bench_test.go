package parallel

import "testing"

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(100000, func(int) {})
	}
}

func BenchmarkForWorkerSum(b *testing.B) {
	c := NewCounter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForWorker(100000, 512, func(worker, start, end int) {
			c.Add(worker, int64(end-start))
		})
	}
}

func BenchmarkAddFloat64(b *testing.B) {
	var bits uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			AddFloat64(&bits, 1)
		}
	})
}

func BenchmarkStripedLock(b *testing.B) {
	locks := NewStripedLocks()
	b.RunParallel(func(pb *testing.PB) {
		k := uint32(0)
		for pb.Next() {
			locks.Lock(k)
			locks.Unlock(k)
			k += 7
		}
	})
}
