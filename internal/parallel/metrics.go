package parallel

import (
	"sync/atomic"

	"repro/internal/obs"
)

// loopMetrics holds the loop-runtime metric handles. Loops load the
// pointer once per call; a nil pointer (the default) means
// instrumentation is off and loops pay a single atomic load.
type loopMetrics struct {
	loops       *obs.Counter
	inlineLoops *obs.Counter
	chunkClaims *obs.Counter
	launches    *obs.Counter
	utilization *obs.Histogram
}

// UtilizationBuckets are the histogram bounds for per-loop worker
// utilization (1.0 = perfectly balanced chunk claims across workers).
var UtilizationBuckets = []float64{0.25, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

var loopMet atomic.Pointer[loopMetrics]

// SetMetrics installs r as the destination for loop instrumentation
// (loop/chunk/worker counters and the utilization histogram). Pass nil
// to turn instrumentation back off. Safe to call concurrently with
// running loops: in-flight loops keep the registry they loaded at entry.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		loopMet.Store(nil)
		return
	}
	loopMet.Store(&loopMetrics{
		loops: r.Counter("graphbolt_parallel_loops_total",
			"Parallel-for loops executed (including inline ones)."),
		inlineLoops: r.Counter("graphbolt_parallel_inline_loops_total",
			"Loops small enough to run inline on the calling goroutine."),
		chunkClaims: r.Counter("graphbolt_parallel_chunk_claims_total",
			"Chunks claimed from loop work queues by all workers."),
		launches: r.Counter("graphbolt_parallel_worker_launches_total",
			"Worker goroutines launched by parallel loops."),
		utilization: r.Histogram("graphbolt_parallel_worker_utilization",
			"Per-loop claim balance: total chunk claims over workers times the busiest worker's claims (1 = perfectly balanced).",
			UtilizationBuckets),
	})
}

// loopStat accumulates per-worker chunk-claim counts for one loop.
type loopStat struct {
	total atomic.Int64
	max   atomic.Int64
}

func (s *loopStat) record(claims int64) {
	if claims == 0 {
		return
	}
	s.total.Add(claims)
	for {
		cur := s.max.Load()
		if claims <= cur || s.max.CompareAndSwap(cur, claims) {
			return
		}
	}
}

// observeInline records a loop that ran on the calling goroutine: one
// worker, one claim, utilization 1 by construction.
func (m *loopMetrics) observeInline() {
	if m == nil {
		return
	}
	m.loops.Inc()
	m.inlineLoops.Inc()
	m.chunkClaims.Inc()
	m.utilization.Observe(1)
}

// observeLoop records a fan-out loop after its workers drained.
func (m *loopMetrics) observeLoop(workers int, s *loopStat) {
	if m == nil {
		return
	}
	m.loops.Inc()
	m.launches.Add(int64(workers))
	total, max := s.total.Load(), s.max.Load()
	m.chunkClaims.Add(total)
	if max > 0 && workers > 0 {
		m.utilization.Observe(float64(total) / (float64(workers) * float64(max)))
	}
}
