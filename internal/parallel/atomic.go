package parallel

import (
	"math"
	"sync"
	"sync/atomic"
)

// AddFloat64 atomically adds delta to *addr using a CAS loop over the
// float's bit pattern. This is the classic lock-free floating point
// accumulate used by graph engines for sum aggregations (Algorithm 1,
// line 6 of the paper uses the same primitive).
func AddFloat64(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, nw) {
			return
		}
	}
}

// MulFloat64 atomically multiplies *addr by factor (used by Belief
// Propagation's product aggregation; retraction divides).
func MulFloat64(addr *uint64, factor float64) {
	for {
		old := atomic.LoadUint64(addr)
		nw := math.Float64bits(math.Float64frombits(old) * factor)
		if atomic.CompareAndSwapUint64(addr, old, nw) {
			return
		}
	}
}

// MinFloat64 atomically lowers *addr to v if v is smaller.
func MinFloat64(addr *uint64, v float64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if math.Float64frombits(old) <= v {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(v)) {
			return true
		}
	}
}

// LoadFloat64 atomically reads a float64 stored as bits.
func LoadFloat64(addr *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(addr))
}

// StoreFloat64 atomically writes a float64 as bits.
func StoreFloat64(addr *uint64, v float64) {
	atomic.StoreUint64(addr, math.Float64bits(v))
}

// lockStripes must be a power of two.
const lockStripes = 4096

// StripedLocks provides per-vertex mutual exclusion without a mutex per
// vertex: vertex v maps to stripe v & (stripes-1). Aggregation types that
// are not a single machine word (label vectors, matrix pairs) are updated
// under the owning stripe's lock.
type StripedLocks struct {
	mu [lockStripes]sync.Mutex
}

// NewStripedLocks returns a ready-to-use striped lock set.
func NewStripedLocks() *StripedLocks { return &StripedLocks{} }

// Lock acquires the stripe owning key.
func (s *StripedLocks) Lock(key uint32) { s.mu[key&(lockStripes-1)].Lock() }

// Unlock releases the stripe owning key.
func (s *StripedLocks) Unlock(key uint32) { s.mu[key&(lockStripes-1)].Unlock() }

// Counter is a padded per-worker counter set merged on read. It avoids the
// cache-line ping-pong a single atomic counter would suffer during edge
// sweeps, while still being safe to add to from ForWorker bodies.
type Counter struct {
	cells []counterCell
}

type counterCell struct {
	n int64
	_ [7]int64 // pad to a cache line
}

// NewCounter returns a counter with one cell per worker.
func NewCounter() *Counter {
	return &Counter{cells: make([]counterCell, Workers())}
}

// Add adds n to the worker's cell. worker must be in [0, Workers()).
func (c *Counter) Add(worker int, n int64) {
	atomic.AddInt64(&c.cells[worker].n, n)
}

// Sum returns the total across all cells.
func (c *Counter) Sum() int64 {
	var total int64
	for i := range c.cells {
		total += atomic.LoadInt64(&c.cells[i].n)
	}
	return total
}

// Reset zeroes every cell.
func (c *Counter) Reset() {
	for i := range c.cells {
		atomic.StoreInt64(&c.cells[i].n, 0)
	}
}
