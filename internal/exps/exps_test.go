package exps

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests.
func tiny() (Config, *bytes.Buffer) {
	var buf bytes.Buffer
	return Config{Scale: 0.02, Iterations: 5, Seed: 9, Out: &buf}, &buf
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg, buf := tiny()
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("table5"); !ok {
		t.Fatal("table5 missing")
	}
	if _, ok := ByName("nonsense"); ok {
		t.Fatal("nonsense found")
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All mismatch")
	}
}

func TestTable1ErrorsGrowAcrossBatches(t *testing.T) {
	cfg, buf := tiny()
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	// Parse the >1% column; it must be non-zero from the first batch
	// (naive reuse is wrong immediately).
	re := regexp.MustCompile(`B\d+\s+(\d+)\s+(\d+)`)
	rows := re.FindAllStringSubmatch(buf.String(), -1)
	if len(rows) != 10 {
		t.Fatalf("expected 10 batch rows, got %d:\n%s", len(rows), buf.String())
	}
	first, _ := strconv.Atoi(rows[0][2])
	if first == 0 {
		t.Fatalf("naive reuse produced zero >1%% errors on batch 1:\n%s", buf.String())
	}
}

func TestFigure2NaiveDiffersGraphBoltMatches(t *testing.T) {
	cfg, buf := tiny()
	if err := Figure2(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "naive differs from scratch: true") {
		t.Fatalf("naive reuse did not diverge:\n%s", out)
	}
	if !strings.Contains(out, "GraphBolt matches scratch: true") {
		t.Fatalf("GraphBolt refinement did not match scratch:\n%s", out)
	}
}

func TestFigure4ValuesStabilize(t *testing.T) {
	cfg, buf := tiny()
	if err := Figure4(cfg); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^(\d+)\s+(\d+)`)
	rows := re.FindAllStringSubmatch(buf.String(), -1)
	if len(rows) < 3 {
		t.Fatalf("too few iteration rows:\n%s", buf.String())
	}
	first, _ := strconv.Atoi(rows[0][2])
	last, _ := strconv.Atoi(rows[len(rows)-1][2])
	if last >= first {
		t.Fatalf("change counts did not decay: first=%d last=%d\n%s", first, last, buf.String())
	}
}

func TestFigure6GraphBoltDoesLessWork(t *testing.T) {
	cfg, buf := tiny()
	if err := Figure6(cfg); err != nil {
		t.Fatal(err)
	}
	// Incremental processing wins when the batch is small relative to
	// the graph (the paper's regime: graphs are orders of magnitude
	// larger than batches); at this tiny test scale only the smallest
	// batch column is in that regime, so assert the ratio there.
	re := regexp.MustCompile(`^(\S+)\s+(\S+)\s+(\d+)\s+(\d+)\s+(\d+)\s+(\d+\.\d+)\s*$`)
	below, total := 0, 0
	for _, line := range strings.Split(buf.String(), "\n") {
		m := re.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		batch, _ := strconv.Atoi(m[3])
		if batch > 100 {
			continue
		}
		ratio, _ := strconv.ParseFloat(m[6], 64)
		total++
		if ratio < 1 {
			below++
		}
	}
	if total == 0 {
		t.Fatalf("no ratio rows:\n%s", buf.String())
	}
	if below*3 < total*2 {
		t.Fatalf("only %d/%d ratios below 1:\n%s", below, total, buf.String())
	}
}

func TestTakeBatchTrims(t *testing.T) {
	cfg, _ := tiny()
	s, err := cfg.NewStream(cfg.Graphs()[0], 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := TakeBatch(s, 73)
	if got := len(b.Add) + len(b.Del); got != 73 {
		t.Fatalf("batch size = %d, want 73", got)
	}
	huge := TakeBatch(s, 1<<30)
	if len(huge.Add) == 0 {
		t.Fatal("huge batch empty")
	}
}
