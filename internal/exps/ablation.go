package exps

import (
	"repro/internal/core"
)

// Ablation quantifies the engine's design choices beyond the paper's
// headline numbers:
//
//  1. Horizontal pruning: sweeping the horizon trades dependency-store
//     memory against refinement reach (shallow horizons shift work into
//     hybrid execution).
//  2. Vertical pruning: disabling it stores an aggregate per vertex per
//     iteration — same results, strictly more memory.
//  3. Single-pass delta (⋃△) vs retract+propagate: the GraphBolt-RP
//     configuration doubles transitive edge work.
func Ablation(cfg Config) error {
	cfg = cfg.withDefaults()
	spec := cfg.Graphs()[0]
	s, err := cfg.NewStream(spec, 1000, 0)
	if err != nil {
		return err
	}
	batch := TakeBatch(s, cfg.scaled(1000))
	algos := cfg.EngineAlgos(s.Base.NumVertices())
	pr := algos[0]
	lp := algos[4]

	cfg.printf("Ablation on %s (V=%d E=%d), batch=%d\n",
		spec.Name, s.Base.NumVertices(), s.Base.NumEdges(), len(batch.Add)+len(batch.Del))

	// 1. Horizon sweep.
	cfg.printf("\n(1) horizontal pruning: horizon sweep (LP)\n")
	cfg.printf("%-9s %12s %12s %14s\n", "horizon", "refine(ms)", "edges", "history(B)")
	for _, h := range []int{1, 2, cfg.Iterations / 2, cfg.Iterations} {
		if h < 1 {
			h = 1
		}
		opts := core.Options{MaxIterations: cfg.Iterations, Horizon: h}
		eng := lp.Build(s.Base, core.ModeGraphBolt, opts)
		eng.Run()
		st := MustApply(eng, batch)
		cfg.printf("%-9d %12.2f %12d %14d\n", h, ms(st.Duration), st.EdgeComputations, eng.HistoryBytes())
	}

	// 2. Vertical pruning.
	cfg.printf("\n(2) vertical pruning (LP, horizon=%d)\n", cfg.Iterations)
	cfg.printf("%-10s %12s %14s\n", "pruning", "refine(ms)", "history(B)")
	for _, disabled := range []bool{false, true} {
		opts := core.Options{MaxIterations: cfg.Iterations, DisableVerticalPruning: disabled}
		eng := lp.Build(s.Base, core.ModeGraphBolt, opts)
		eng.Run()
		st := MustApply(eng, batch)
		name := "on"
		if disabled {
			name = "off"
		}
		cfg.printf("%-10s %12.2f %14d\n", name, ms(st.Duration), eng.HistoryBytes())
	}

	// 3. Delta vs retract+propagate.
	cfg.printf("\n(3) transitive update strategy (PR)\n")
	cfg.printf("%-14s %12s %12s\n", "strategy", "refine(ms)", "edges")
	for _, mode := range []core.Mode{core.ModeGraphBolt, core.ModeGraphBoltRP} {
		opts := core.Options{MaxIterations: cfg.Iterations}
		eng := pr.Build(s.Base, mode, opts)
		eng.Run()
		st := MustApply(eng, batch)
		cfg.printf("%-14s %12.2f %12d\n", mode, ms(st.Duration), st.EdgeComputations)
	}
	return nil
}
