package exps

import (
	"math"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kickstarter"
)

// ddEdges converts to the DD PageRank edge representation.
func ddEdges(es []graph.Edge) []dd.KV[uint32, uint32] {
	out := make([]dd.KV[uint32, uint32], len(es))
	for i, e := range es {
		out[i] = dd.KV[uint32, uint32]{Key: e.From, Val: e.To}
	}
	return out
}

func ddWeighted(es []graph.Edge) []dd.KV[uint32, dd.WeightedEdge] {
	out := make([]dd.KV[uint32, dd.WeightedEdge], len(es))
	for i, e := range es {
		out[i] = dd.KV[uint32, dd.WeightedEdge]{Key: e.From, Val: dd.WeightedEdge{Dst: e.To, Weight: e.Weight}}
	}
	return out
}

// Figure8 compares PageRank on the TT stand-in across batch sizes:
// Differential Dataflow vs GraphBolt vs GraphBolt-RP. Expected shape:
// GraphBolt fastest, GraphBolt-RP close behind (two values per change),
// DD slowest (generic per-operator trace maintenance).
func Figure8(cfg Config) error {
	cfg = cfg.withDefaults()
	spec := cfg.Graphs()[3] // TT
	sizes := []int{1, 10, 100, cfg.scaled(1000), cfg.scaled(10000)}
	opts := core.Options{MaxIterations: cfg.Iterations}

	cfg.printf("Figure 8a: PageRank, DD vs GraphBolt vs GraphBolt-RP (ms)\n")
	cfg.printf("%-9s | %12s %12s %12s\n", "batch", "DD", "GraphBolt", "GraphBolt-RP")
	for _, size := range sizes {
		s, err := cfg.NewStream(spec, 1000, 0)
		if err != nil {
			return err
		}
		batch := TakeBatch(s, size)
		pr := Algo{"PR", wrap[float64, float64](algorithms.NewPageRank())}
		gb := MeasureMutation(pr, s.Base, core.ModeGraphBolt, opts, batch)
		rp := MeasureMutation(pr, s.Base, core.ModeGraphBoltRP, opts, batch)

		flow := dd.NewPageRank(cfg.Iterations, 0.85)
		verts := make([]uint32, s.Base.NumVertices())
		for i := range verts {
			verts[i] = uint32(i)
		}
		flow.Update(verts, ddEdges(s.Base.Edges(nil)), nil)
		start := time.Now()
		flow.Update(nil, ddEdges(batch.Add), ddEdges(batch.Del))
		ddTime := time.Since(start)

		cfg.printf("%-9d | %12.2f %12.2f %12.2f\n", size, ms(ddTime), ms(gb.Duration), ms(rp.Duration))
	}
	return nil
}

// Figure8b measures the variance over 100 consecutive single-edge
// mutations for DD and GraphBolt. Expected shape: GraphBolt's per-edge
// latencies cluster tightly; DD's vary widely with each change's reach.
func Figure8b(cfg Config) error {
	cfg = cfg.withDefaults()
	spec := cfg.Graphs()[3]
	s, err := cfg.NewStream(spec, 1, 100)
	if err != nil {
		return err
	}
	opts := core.Options{MaxIterations: cfg.Iterations, Mode: core.ModeGraphBolt}

	eng, err := core.NewEngine[float64, float64](s.Base, algorithms.NewPageRank(), opts)
	if err != nil {
		return err
	}
	eng.Run()
	flow := dd.NewPageRank(cfg.Iterations, 0.85)
	verts := make([]uint32, s.Base.NumVertices())
	for i := range verts {
		verts[i] = uint32(i)
	}
	flow.Update(verts, ddEdges(s.Base.Edges(nil)), nil)

	var gbTimes, ddTimes []float64
	for _, b := range s.Batches {
		start := time.Now()
		eng.ApplyBatch(b)
		gbTimes = append(gbTimes, ms(time.Since(start)))
		start = time.Now()
		flow.Update(nil, ddEdges(b.Add), ddEdges(b.Del))
		ddTimes = append(ddTimes, ms(time.Since(start)))
	}
	cfg.printf("Figure 8b: 100 single-edge mutations, per-mutation latency (ms)\n")
	cfg.printf("%-10s %8s %8s %8s %8s\n", "system", "mean", "min", "max", "stddev")
	mg, ng, xg, sg := summarize(gbTimes)
	md, nd, xd, sd := summarize(ddTimes)
	cfg.printf("%-10s %8.3f %8.3f %8.3f %8.3f\n", "GraphBolt", mg, ng, xg, sg)
	cfg.printf("%-10s %8.3f %8.3f %8.3f %8.3f\n", "DD", md, nd, xd, sd)
	return nil
}

func summarize(xs []float64) (mean, min, max, stddev float64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		stddev += (x - mean) * (x - mean)
	}
	stddev = math.Sqrt(stddev / float64(len(xs)))
	return mean, min, max, stddev
}

// Figure9 compares SSSP across batch sizes: KickStarter vs GraphBolt's
// min re-evaluation vs DD, (a) with deletions mixed in, (b) additions
// only. Expected shapes: KickStarter wins overall (trimmed
// approximations, no BSP guarantee); with additions only, KickStarter
// and GraphBolt converge since min needs no re-evaluation.
func Figure9(cfg Config) error {
	cfg = cfg.withDefaults()
	spec := cfg.Graphs()[3]
	sizes := []int{1, 10, 100, cfg.scaled(1000), cfg.scaled(10000)}

	for _, part := range []struct {
		name    string
		delFrac float64
	}{
		{"Figure 9a: SSSP with additions + deletions", 0.25},
		{"Figure 9b: SSSP with additions only", 0},
	} {
		cfg.printf("%s (ms)\n", part.name)
		cfg.printf("%-9s | %12s %12s %12s\n", "batch", "KickStarter", "GraphBolt", "DD")
		for _, size := range sizes {
			s, err := cfg.NewStreamOpts(spec, 1000, 0, gen.WeightSmallInt, part.delFrac)
			if err != nil {
				return err
			}
			batch := TakeBatch(s, size)
			n := s.Base.NumVertices()

			ks := kickstarter.NewSSSP(s.Base, 0)
			start := time.Now()
			ks.ApplyBatch(batch)
			ksTime := time.Since(start)

			ssspAlgo := Algo{"SSSP", wrap[float64, float64](algorithms.NewSSSP(0))}
			gb := MeasureMutation(ssspAlgo, s.Base, core.ModeGraphBolt,
				core.Options{MaxIterations: 4 * n, Horizon: 64}, batch)

			flow := dd.NewSSSP(0, 4*n)
			flow.Update(ddWeighted(s.Base.Edges(nil)), nil)
			start = time.Now()
			flow.Update(ddWeighted(batch.Add), ddWeighted(delWithWeights(s.Base, batch.Del)))
			ddTime := time.Since(start)

			cfg.printf("%-9d | %12.2f %12.2f %12.2f\n", size, ms(ksTime), ms(gb.Duration), ms(ddTime))
		}
	}
	return nil
}

// delWithWeights resolves deletion requests to concrete weighted edges
// against the snapshot (the DD collection is keyed by exact records).
func delWithWeights(g *graph.Graph, dels []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, len(dels))
	for _, d := range dels {
		if w, ok := g.EdgeWeight(d.From, d.To); ok {
			out = append(out, graph.Edge{From: d.From, To: d.To, Weight: w})
		}
	}
	return out
}
