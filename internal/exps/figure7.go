package exps

import (
	"repro/internal/core"
	"repro/internal/stream"
)

// Figure7 sweeps the mutation batch size from a single edge up to the
// paper's 1M (scaled, and capped by the stream's available mutations),
// comparing GB-Reset with GraphBolt on the TT and FT stand-ins for every
// algorithm. The expected shape: GraphBolt's time grows with batch size
// but stays below GB-Reset even at the largest batches.
func Figure7(cfg Config) error {
	cfg = cfg.withDefaults()
	sizes := []int{1, 10, 100, cfg.scaled(1000), cfg.scaled(10000), cfg.scaled(100000), cfg.scaled(1000000)}
	opts := core.Options{MaxIterations: cfg.Iterations}
	cfg.printf("Figure 7: execution time vs mutation batch size (ms)\n")
	cfg.printf("%-5s %-5s %9s | %9s %9s\n", "algo", "graph", "batch", "GB-Reset", "GraphBolt")
	for _, spec := range []GraphSpec{cfg.Graphs()[3], cfg.Graphs()[4]} { // TT, FT
		s, err := cfg.NewStream(spec, 1000, 0)
		if err != nil {
			return err
		}
		for _, size := range sizes {
			batch := TakeBatch(s, size)
			actual := len(batch.Add) + len(batch.Del)
			if actual == 0 {
				continue
			}
			for _, a := range cfg.EngineAlgos(s.Base.NumVertices()) {
				rst := MeasureMutation(a, s.Base, core.ModeReset, opts, batch)
				gb := MeasureMutation(a, s.Base, core.ModeGraphBolt, opts, batch)
				cfg.printf("%-5s %-5s %9d | %9.2f %9.2f\n",
					a.Name, spec.Name, actual, ms(rst.Duration), ms(gb.Duration))
			}
			tc := measureTC(s.Base, batch, spec.Name, actual)
			cfg.printf("%-5s %-5s %9d | %9.2f %9.2f\n",
				"TC", spec.Name, actual, ms(tc.Reset), ms(tc.GraphBolt))
		}
	}
	return nil
}

// Table8 contrasts Hi (mutations at high out-degree vertices) and Lo
// (low out-degree) workloads for GraphBolt (§5.3B). Hi must cost more.
func Table8(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(10000)
	opts := core.Options{MaxIterations: cfg.Iterations}
	cfg.printf("Table 8: GraphBolt with Hi vs Lo mutation workloads (batch=%d; ms)\n", size)
	cfg.printf("%-5s %-5s | %9s %9s\n", "algo", "graph", "Lo", "Hi")
	for _, spec := range []GraphSpec{cfg.Graphs()[3], cfg.Graphs()[4]} { // TT, FT
		s, err := cfg.NewStream(spec, 1000, 0)
		if err != nil {
			return err
		}
		lo := stream.HiLoBatch(s.Base, stream.WorkloadLo, size, 0.25, cfg.Seed+7)
		hi := stream.HiLoBatch(s.Base, stream.WorkloadHi, size, 0.25, cfg.Seed+7)
		for _, a := range cfg.EngineAlgos(s.Base.NumVertices()) {
			loRes := MeasureMutation(a, s.Base, core.ModeGraphBolt, opts, lo)
			hiRes := MeasureMutation(a, s.Base, core.ModeGraphBolt, opts, hi)
			cfg.printf("%-5s %-5s | %9.2f %9.2f\n", a.Name, spec.Name, ms(loRes.Duration), ms(hiRes.Duration))
		}
		// TC under the same workloads.
		loTC := measureTC(s.Base, lo, spec.Name, size)
		hiTC := measureTC(s.Base, hi, spec.Name, size)
		cfg.printf("%-5s %-5s | %9.2f %9.2f\n", "TC", spec.Name, ms(loTC.GraphBolt), ms(hiTC.GraphBolt))
	}
	return nil
}
