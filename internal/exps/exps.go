// Package exps contains one driver per table and figure of the paper's
// evaluation (§5). Each driver builds its workload from the deterministic
// synthetic generators (standing in for the paper's datasets, see
// DESIGN.md §2), runs the systems under comparison, and prints the same
// rows/series the paper reports. The drivers are shared by the
// graphbolt-bench command and the root-level testing.B benchmarks.
package exps

import (
	"fmt"
	"io"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

// Config parameterizes every experiment.
type Config struct {
	// Scale multiplies the default workload sizes; 1.0 targets a few
	// minutes for the full suite on a laptop, tests use ~0.05.
	Scale float64
	// Iterations per run; the paper uses 10.
	Iterations int
	// Seed drives all generators.
	Seed uint64
	// Tolerance gates selective scheduling in the performance
	// experiments (§4.2: "comparing change with tolerance"): value
	// changes below it neither propagate nor count as work. Without one,
	// float-level perturbations from a single mutated edge spread across
	// the whole graph and incremental processing degenerates to full
	// reprocessing. ≤ 0 selects the default 1e-4.
	Tolerance float64
	// Out receives the report.
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// scaled rounds s·x up to at least 4.
func (c Config) scaled(x int) int {
	v := int(float64(x) * c.Scale)
	if v < 4 {
		v = 4
	}
	return v
}

// GraphSpec is one of the evaluation's input graphs (Table 2),
// down-scaled: the RMAT generator preserves the skew that drives the
// paper's results, not the absolute sizes.
type GraphSpec struct {
	Name     string
	Vertices int
	Edges    int
}

// Graphs mirrors Table 2's six inputs at laptop scale (multiplied by
// Config.Scale).
func (c Config) Graphs() []GraphSpec {
	return []GraphSpec{
		{"WK", c.scaled(8192), c.scaled(131072)},
		{"UK", c.scaled(16384), c.scaled(196608)},
		{"TW", c.scaled(16384), c.scaled(262144)},
		{"TT", c.scaled(24576), c.scaled(327680)},
		{"FT", c.scaled(32768), c.scaled(393216)},
	}
}

// YahooGraph is the largest input (Table 2's YH), used by Tables 6–7.
func (c Config) YahooGraph() GraphSpec {
	return GraphSpec{"YH", c.scaled(65536), c.scaled(786432)}
}

// NewStream builds the §5.1 evaluation stream for a graph spec: half the
// edges loaded, the rest streamed with deletions mixed in.
func (c Config) NewStream(spec GraphSpec, batchSize, numBatches int) (*stream.Stream, error) {
	return c.NewStreamOpts(spec, batchSize, numBatches, gen.WeightUniform, 0.25)
}

// NewStreamOpts is NewStream with explicit weighting and deletion mix
// (Figure 9 uses integer weights and an additions-only variant).
func (c Config) NewStreamOpts(spec GraphSpec, batchSize, numBatches int, w gen.Weighting, delFrac float64) (*stream.Stream, error) {
	edges := gen.RMAT(c.Seed^uint64(len(spec.Name))^uint64(spec.Edges), spec.Vertices, spec.Edges, w)
	return stream.FromEdges(spec.Vertices, edges, stream.Config{
		LoadFraction:   0.5,
		BatchSize:      batchSize,
		NumBatches:     numBatches,
		DeleteFraction: delFrac,
		Seed:           c.Seed,
	})
}

// Runner abstracts a typed engine so drivers can sweep algorithms.
type Runner interface {
	Run() core.Stats
	ApplyBatch(graph.Batch) (core.Stats, error)
	HistoryBytes() int64
}

// MustApply applies a batch that is valid by construction; the drivers
// generate their own workloads, so an error here is a bug.
func MustApply(r Runner, b graph.Batch) core.Stats {
	st, err := r.ApplyBatch(b)
	if err != nil {
		panic(err)
	}
	return st
}

// Algo names an algorithm and knows how to build an engine for it.
type Algo struct {
	Name  string
	Build func(g *graph.Graph, mode core.Mode, opts core.Options) Runner
}

func wrap[V, A any](p core.Program[V, A]) func(*graph.Graph, core.Mode, core.Options) Runner {
	return func(g *graph.Graph, mode core.Mode, opts core.Options) Runner {
		opts.Mode = mode
		e, err := core.NewEngine[V, A](g, p, opts)
		if err != nil {
			panic(err)
		}
		return e
	}
}

// seedsFor picks deterministic seed vertices for the semi-supervised
// algorithms.
func seedsFor(n int, k int, seed uint64) []core.VertexID {
	r := gen.NewRNG(seed)
	out := make([]core.VertexID, 0, k)
	seen := map[int]bool{}
	for len(out) < k && len(seen) < n {
		v := r.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, core.VertexID(v))
		}
	}
	return out
}

// EngineAlgos returns the five engine-driven algorithms of the
// evaluation (TC runs through its dedicated incremental counter).
func (c Config) EngineAlgos(n int) []Algo {
	pos := seedsFor(n, 8, c.Seed+1)
	neg := seedsFor(n, 8, c.Seed+2)
	lpSeeds := map[core.VertexID]int{}
	for i, v := range seedsFor(n, 12, c.Seed+3) {
		lpSeeds[v] = i % 3
	}
	pr := algorithms.NewPageRank()
	pr.Tolerance = c.Tolerance
	bp := algorithms.NewBeliefProp(3)
	bp.Tolerance = c.Tolerance
	cf := algorithms.NewCollabFilter(4)
	cf.Tolerance = c.Tolerance
	coem := algorithms.NewCoEM(pos, neg)
	coem.Tolerance = c.Tolerance
	lp := algorithms.NewLabelProp(3, lpSeeds)
	lp.Tolerance = c.Tolerance
	return []Algo{
		{"PR", wrap[float64, float64](pr)},
		{"BP", wrap[[]float64, []float64](bp)},
		{"CF", wrap[[]float64, algorithms.CFAgg](cf)},
		{"CoEM", wrap[float64, algorithms.CoEMAgg](coem)},
		{"LP", wrap[[]float64, []float64](lp)},
	}
}

// MutationResult is one measured ApplyBatch.
type MutationResult struct {
	Duration time.Duration
	Stats    core.Stats
}

// MeasureMutation runs an initial computation, then applies and times
// one mutation batch.
func MeasureMutation(a Algo, g *graph.Graph, mode core.Mode, opts core.Options, batch graph.Batch) MutationResult {
	eng := a.Build(g, mode, opts)
	eng.Run()
	start := time.Now()
	st := MustApply(eng, batch)
	return MutationResult{Duration: time.Since(start), Stats: st}
}

// TakeBatch concatenates stream batches until size mutations are
// gathered (the drivers sweep batch sizes larger than the stream's
// granularity).
func TakeBatch(s *stream.Stream, size int) graph.Batch {
	var b graph.Batch
	for _, sb := range s.Batches {
		need := size - len(b.Add) - len(b.Del)
		if need <= 0 {
			break
		}
		b.Add = append(b.Add, sb.Add...)
		b.Del = append(b.Del, sb.Del...)
	}
	total := len(b.Add) + len(b.Del)
	if total > size {
		// Trim deletions first to keep the add/delete mix.
		over := total - size
		if over <= len(b.Del) {
			b.Del = b.Del[:len(b.Del)-over]
		} else {
			over -= len(b.Del)
			b.Del = nil
			b.Add = b.Add[:len(b.Add)-over]
		}
	}
	return b
}
