package exps

import (
	"math"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// Table1 reproduces the motivation table: the number of vertices whose
// Label Propagation results are wrong (relative error ≥ 10% and ≥ 1%)
// when intermediate values are reused *naively* across 10 batches of
// edge mutations, versus ground-truth restarts. The error must grow
// across batches — the paper's point that naive reuse compounds.
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	spec := cfg.Graphs()[0] // WK stand-in
	s, err := cfg.NewStream(spec, cfg.scaled(2000), 10)
	if err != nil {
		return err
	}
	n := s.Base.NumVertices()
	lpSeeds := map[core.VertexID]int{}
	for i, v := range seedsFor(n, 12, cfg.Seed+3) {
		lpSeeds[v] = i % 3
	}
	lp := algorithms.NewLabelProp(3, lpSeeds)
	opts := core.Options{MaxIterations: cfg.Iterations}

	naive, err := core.NewEngine[[]float64, []float64](s.Base, lp, core.Options{
		Mode: core.ModeNaive, MaxIterations: cfg.Iterations,
	})
	if err != nil {
		return err
	}
	naive.Run()

	cfg.printf("Table 1: vertices with incorrect Label Propagation results under naive reuse\n")
	cfg.printf("graph=%s(V=%d,E=%d) batches=10 mutations/batch=%d\n", spec.Name, n, s.Base.NumEdges(), cfg.scaled(2000))
	cfg.printf("%-8s %12s %12s\n", "batch", ">10% error", ">1% error")
	for bi, batch := range s.Batches {
		naive.ApplyBatch(batch)
		truth, err := core.NewEngine[[]float64, []float64](naive.Graph(), lp, core.Options{
			Mode: core.ModeReset, MaxIterations: cfg.Iterations,
		})
		if err != nil {
			return err
		}
		truth.Run()
		over10, over1 := countErrors(naive.Values(), truth.Values())
		cfg.printf("B%-7d %12d %12d\n", bi+1, over10, over1)
	}
	_ = opts
	return nil
}

// countErrors counts vertices whose max componentwise relative error
// exceeds 10% and 1% respectively.
func countErrors(got, want [][]float64) (over10, over1 int) {
	for v := range want {
		maxRel := 0.0
		for f := range want[v] {
			denom := math.Abs(want[v][f])
			if denom < 1e-9 {
				denom = 1e-9
			}
			rel := math.Abs(got[v][f]-want[v][f]) / denom
			if rel > maxRel {
				maxRel = rel
			}
		}
		if maxRel >= 0.10 {
			over10++
		}
		if maxRel >= 0.01 {
			over1++
		}
	}
	return over10, over1
}

// Figure2 reproduces the 5-vertex walk-through: as G mutates to G^T,
// continuing from G's converged Label Propagation values (S*(G^T, R_G))
// yields different results than computing from scratch (S*(G^T, I)),
// while GraphBolt's refinement matches the scratch run.
func Figure2(cfg Config) error {
	cfg = cfg.withDefaults()
	// A small skewed graph and one edge addition (the paper adds (1,2)).
	base := []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 3, Weight: 1}, {From: 3, To: 4, Weight: 1},
		{From: 4, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1}, {From: 2, To: 1, Weight: 1},
	}
	g := graph.MustBuild(5, base)
	mutation := graph.Batch{Add: []graph.Edge{{From: 1, To: 2, Weight: 1}}}
	lp := algorithms.NewLabelProp(2, map[core.VertexID]int{0: 0, 4: 1})
	// The evaluation's fixed-iteration regime (each algorithm runs 10
	// iterations, §5.1): at a finite horizon the naive continuation
	// S^k(G^T, R_G) visibly differs from S^k(G^T, I), which is the
	// figure's point. Running both to their unique clamped-seed fixed
	// point would mask the violation for this algorithm.
	opts := core.Options{MaxIterations: 6}

	scratchG, _ := core.NewEngine[[]float64, []float64](g, lp, withMode(opts, core.ModeReset))
	scratchG.Run()

	gt, _ := g.Apply(mutation)
	scratchGT, _ := core.NewEngine[[]float64, []float64](gt, lp, withMode(opts, core.ModeReset))
	scratchGT.Run()

	naive, _ := core.NewEngine[[]float64, []float64](g, lp, withMode(opts, core.ModeNaive))
	naive.Run()
	naive.ApplyBatch(mutation)

	gb, _ := core.NewEngine[[]float64, []float64](g, lp, withMode(opts, core.ModeGraphBolt))
	gb.Run()
	gb.ApplyBatch(mutation)

	cfg.printf("Figure 2: Label Propagation (label-0 probability per vertex)\n")
	cfg.printf("%-18s", "row")
	for v := 0; v < 5; v++ {
		cfg.printf("%10d", v)
	}
	cfg.printf("\n")
	row := func(name string, vals [][]float64) {
		cfg.printf("%-18s", name)
		for v := 0; v < 5; v++ {
			cfg.printf("%10.4f", vals[v][0])
		}
		cfg.printf("\n")
	}
	row("S*(G,I)", scratchG.Values())
	row("S*(GT,I)", scratchGT.Values())
	row("S*(GT,R_G) naive", naive.Values())
	row("GraphBolt refine", gb.Values())
	cfg.printf("naive differs from scratch: %v; GraphBolt matches scratch: %v\n",
		maxDiff(naive.Values(), scratchGT.Values()) > 1e-6,
		maxDiff(gb.Values(), scratchGT.Values()) <= 1e-9)
	return nil
}

func withMode(o core.Options, m core.Mode) core.Options {
	o.Mode = m
	return o
}

func maxDiff(a, b [][]float64) float64 {
	worst := 0.0
	for v := range a {
		for f := range a[v] {
			if d := math.Abs(a[v][f] - b[v][f]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Figure4 reproduces the stabilization plot: the number of vertices
// whose Label Propagation value changes at each iteration, which decays
// sharply on skewed graphs — the opportunity pruning exploits.
func Figure4(cfg Config) error {
	cfg = cfg.withDefaults()
	spec := cfg.Graphs()[0]
	s, err := cfg.NewStream(spec, 100, 1)
	if err != nil {
		return err
	}
	n := s.Base.NumVertices()
	lpSeeds := map[core.VertexID]int{}
	for i, v := range seedsFor(n, 12, cfg.Seed+3) {
		lpSeeds[v] = i % 3
	}
	lp := algorithms.NewLabelProp(3, lpSeeds)

	// One tracked run; the dependency store's per-level aggregates let us
	// reconstruct each iteration's values. Stabilization is a convergence
	// phenomenon, so this figure runs enough iterations to reach it
	// regardless of the evaluation's 10-iteration budget.
	iters := cfg.Iterations
	if iters < 60 {
		iters = 60
	}
	eng, err := core.NewEngine[[]float64, []float64](s.Base, lp, core.Options{
		Mode: core.ModeGraphBolt, MaxIterations: iters, Horizon: iters,
	})
	if err != nil {
		return err
	}
	eng.Run()
	cfg.printf("Figure 4: vertices changing per iteration, LP on %s (V=%d)\n", spec.Name, n)
	cfg.printf("%-10s %10s  %s\n", "iteration", "changed", "")
	for it := 1; it <= iters; it++ {
		changed := 0
		for v := 0; v < n; v++ {
			cur := eng.ValueAtLevel(core.VertexID(v), it)
			was := eng.ValueAtLevel(core.VertexID(v), it-1)
			for f := range cur {
				// Count convergence-relevant movement (the paper's plot
				// uses its tolerance); float-level churn is not "change".
				if math.Abs(cur[f]-was[f]) > 1e-3 {
					changed++
					break
				}
			}
		}
		bar := changed * 60 / n
		cfg.printf("%-10d %10d  %s\n", it, changed, hashes(bar))
		if changed == 0 {
			break
		}
	}
	return nil
}

func hashes(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
