package exps

import (
	"math"

	"repro/internal/core"
	"repro/internal/tagprop"
)

// TagFraction quantifies the §2.2 motivation: a tag-propagation system
// (GraphIn-style) must reset every vertex forward-reachable from a
// mutation, while the set of values that actually change — what
// GraphBolt's refinement converges on — is far smaller. Columns: the
// tagged fraction of |V|, and the fraction of Label Propagation values
// that actually changed (beyond the tolerance) after the batch.
func TagFraction(cfg Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Tag propagation vs actual change (§2.2): fraction of |V|\n")
	cfg.printf("%-5s %9s | %10s %12s %8s\n", "graph", "batch", "tagged", "changed", "ratio")
	for _, spec := range cfg.Graphs()[:3] {
		s, err := cfg.NewStream(spec, 1000, 0)
		if err != nil {
			return err
		}
		lp := cfg.EngineAlgos(s.Base.NumVertices())[4] // LP
		for _, size := range []int{1, cfg.scaled(100), cfg.scaled(1000)} {
			batch := TakeBatch(s, size)
			mutated, res := s.Base.Apply(batch)
			tagged := tagprop.TaggedFraction(mutated, res.Added, res.Deleted)

			eng := lp.Build(s.Base, core.ModeGraphBolt, core.Options{MaxIterations: cfg.Iterations})
			lpEng, ok := eng.(*core.Engine[[]float64, []float64])
			if !ok {
				continue
			}
			lpEng.Run()
			before := make([][]float64, len(lpEng.Values()))
			for v, d := range lpEng.Values() {
				before[v] = append([]float64(nil), d...)
			}
			lpEng.ApplyBatch(batch)
			changed := 0
			for v, d := range lpEng.Values() {
				if v >= len(before) {
					changed++
					continue
				}
				for f := range d {
					if math.Abs(d[f]-before[v][f]) > cfg.Tolerance {
						changed++
						break
					}
				}
			}
			changedFrac := float64(changed) / float64(len(lpEng.Values()))
			ratio := math.Inf(1)
			if changedFrac > 0 {
				ratio = tagged / changedFrac
			}
			cfg.printf("%-5s %9d | %9.1f%% %11.2f%% %8.1f\n",
				spec.Name, size, 100*tagged, 100*changedFrac, ratio)
		}
	}
	cfg.printf("(LP; 'tagged' is what a tag-reset system recomputes, 'changed' what refinement converges on)\n")
	return nil
}
