package exps

import (
	"sort"

	"repro/internal/algorithms"
	"repro/internal/core"
)

// Table9 estimates the memory increase GraphBolt's dependency tracking
// adds over GB-Reset. Following the paper, the measurement is the
// worst-case first batch of processing: the full (unpruned-horizon)
// dependency store after the initial run, relative to the baseline
// footprint both systems share (graph structure + per-vertex
// value/aggregate arrays). TC is reported as its dynamic adjacency
// relative to the CSR/CSC snapshot.
func Table9(cfg Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Table 9: memory increase of GraphBolt over GB-Reset (dependency store / baseline)\n")
	cfg.printf("%-5s %-5s %14s %14s %9s\n", "algo", "graph", "baseline(B)", "history(B)", "increase")
	for _, spec := range cfg.Graphs() {
		s, err := cfg.NewStream(spec, 100, 1)
		if err != nil {
			return err
		}
		g := s.Base
		n := int64(g.NumVertices())
		m := g.NumEdges()
		// Shared baseline: CSR + CSC (targets 4B, weights 8B, offsets 8B)
		// plus two value arrays and one aggregate array per vertex.
		graphBytes := 2 * (m*(4+8) + (n+1)*8)

		perAlgo := []struct {
			name     string
			valBytes int64 // per-vertex value + aggregate footprint
			algo     Algo
		}{
			{"PR", 3 * 8, Algo{"PR", wrap[float64, float64](algorithms.NewPageRank())}},
			{"BP", 3 * (24 + 3*8), Algo{"BP", wrap[[]float64, []float64](algorithms.NewBeliefProp(3))}},
			{"CoEM", 2*8 + 16, Algo{"CoEM", wrap[float64, algorithms.CoEMAgg](algorithms.NewCoEM(
				seedsFor(int(n), 8, cfg.Seed+1), seedsFor(int(n), 8, cfg.Seed+2)))}},
			{"LP", 3 * (24 + 3*8), Algo{"LP", wrap[[]float64, []float64](algorithms.NewLabelProp(3, map[core.VertexID]int{}))}},
			{"CF", 2*(24+4*8) + (48 + 8*20), Algo{"CF", wrap[[]float64, algorithms.CFAgg](algorithms.NewCollabFilter(4))}},
		}
		for _, pa := range perAlgo {
			eng := pa.algo.Build(g, core.ModeGraphBolt, core.Options{MaxIterations: cfg.Iterations})
			eng.Run()
			baseline := graphBytes + n*pa.valBytes
			hist := eng.HistoryBytes()
			cfg.printf("%-5s %-5s %14d %14d %8.2f%%\n",
				pa.name, spec.Name, baseline, hist, 100*float64(hist)/float64(baseline))
		}
		// TC: dynamic multiset adjacency (both directions) vs CSR/CSC.
		// Go map overhead ≈ 48B/bucket-ish; estimate 24B per directed
		// edge entry per direction plus per-vertex headers.
		tcExtra := 2*(m*24) + 2*(n*48)
		cfg.printf("%-5s %-5s %14d %14d %8.2f%%\n",
			"TC", spec.Name, graphBytes, tcExtra, 100*float64(tcExtra)/float64(graphBytes))
	}
	return nil
}

// Experiment names a driver for the CLI and benchmarks.
type Experiment struct {
	Name string
	Desc string
	Run  func(Config) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "naive-reuse error growth (LP)", Table1},
		{"figure2", "5-vertex naive-vs-correct walk-through", Figure2},
		{"figure4", "value stabilization across iterations", Figure4},
		{"table5", "execution time: Ligra vs GB-Reset vs GraphBolt", Table5},
		{"figure6", "edge-computation ratio GraphBolt/GB-Reset", Figure6},
		{"table6", "parallelism study on YH", Table6},
		{"table7", "GraphBolt edge computations on YH", Table7},
		{"figure7", "batch-size sweep 1..1M", Figure7},
		{"table8", "Hi vs Lo mutation workloads", Table8},
		{"figure8", "PageRank vs Differential Dataflow", Figure8},
		{"figure8b", "single-edge mutation variance vs DD", Figure8b},
		{"figure9", "SSSP: KickStarter vs GraphBolt vs DD", Figure9},
		{"table9", "memory overhead of dependency tracking", Table9},
		{"ablation", "design-choice ablations: pruning, delta vs R+P", Ablation},
		{"tagfrac", "tag-propagation reset fraction vs actual change (§2.2)", TagFraction},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names lists experiment names sorted.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
