package exps

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// sweepCell is one (algorithm, graph, batch size) measurement across the
// three systems.
type sweepCell struct {
	Algo, Graph string
	BatchSize   int
	Ligra       time.Duration
	Reset       time.Duration
	GraphBolt   time.Duration
	ResetEdges  int64
	GBEdges     int64
}

// batchSizes mirrors the paper's 1K/10K/100K progression. The paper's
// graphs are ~4 orders of magnitude larger than our laptop-scale
// stand-ins, so the columns preserve the *mutation ratio* progression
// (≈0.1%, 1%, 10% of |E| here) rather than the absolute counts — at
// equal absolute counts every column would sit beyond the incremental
// crossover that the paper's 0.0003%-of-|E| batches never approach.
func (c Config) batchSizes() []int {
	return []int{c.scaled(100), c.scaled(1000), c.scaled(10000)}
}

// sweep measures every algorithm × graph × batch size for Table 5 and
// Figure 6. TC is handled separately (single-iteration counter).
func sweep(cfg Config, specs []GraphSpec) ([]sweepCell, error) {
	var cells []sweepCell
	opts := core.Options{MaxIterations: cfg.Iterations}
	for _, spec := range specs {
		s, err := cfg.NewStream(spec, cfg.batchSizes()[0], 0)
		if err != nil {
			return nil, err
		}
		for _, size := range cfg.batchSizes() {
			batch := TakeBatch(s, size)
			for _, a := range cfg.EngineAlgos(s.Base.NumVertices()) {
				cell := sweepCell{Algo: a.Name, Graph: spec.Name, BatchSize: size}
				lig := MeasureMutation(a, s.Base, core.ModeLigra, opts, batch)
				cell.Ligra = lig.Duration
				rst := MeasureMutation(a, s.Base, core.ModeReset, opts, batch)
				cell.Reset = rst.Duration
				cell.ResetEdges = rst.Stats.EdgeComputations
				gb := MeasureMutation(a, s.Base, core.ModeGraphBolt, opts, batch)
				cell.GraphBolt = gb.Duration
				cell.GBEdges = gb.Stats.EdgeComputations
				cells = append(cells, cell)
			}
			cells = append(cells, measureTC(s.Base, batch, spec.Name, size))
		}
	}
	return cells, nil
}

// measureTC times triangle counting: both restart baselines recount from
// scratch (TC runs in a single iteration), GraphBolt adjusts locally.
func measureTC(base *graph.Graph, batch graph.Batch, graphName string, size int) sweepCell {
	cell := sweepCell{Algo: "TC", Graph: graphName, BatchSize: size}

	mutated, _ := base.Apply(batch)
	start := time.Now()
	algorithms.CountGraph(mutated)
	cell.Ligra = time.Since(start)
	cell.Reset = cell.Ligra // identical per the paper: TC has no iteration reuse

	tc := algorithms.NewTriangleCounter(base)
	before := tc.EdgeComputations
	start = time.Now()
	tc.Apply(batch)
	cell.GraphBolt = time.Since(start)
	cell.GBEdges = tc.EdgeComputations - before
	cell.ResetEdges = mutated.NumEdges() // one probe per edge on recount
	return cell
}

func speedup(base, x time.Duration) string {
	if x <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(x))
}

// Table5 prints execution times for Ligra, GB-Reset and GraphBolt across
// batch sizes, with the paper's speedup rows.
func Table5(cfg Config) error {
	cfg = cfg.withDefaults()
	cells, err := sweep(cfg, cfg.Graphs())
	if err != nil {
		return err
	}
	cfg.printf("Table 5: execution time on mutation batches (scaled inputs; ms)\n")
	cfg.printf("%-5s %-5s %9s | %9s %9s %9s | %9s %9s\n",
		"algo", "graph", "batch", "Ligra", "GB-Reset", "GraphBolt", "xLigra", "xGB-Reset")
	for _, c := range cells {
		cfg.printf("%-5s %-5s %9d | %9.2f %9.2f %9.2f | %9s %9s\n",
			c.Algo, c.Graph, c.BatchSize,
			ms(c.Ligra), ms(c.Reset), ms(c.GraphBolt),
			speedup(c.Ligra, c.GraphBolt), speedup(c.Reset, c.GraphBolt))
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Figure6 prints the ratio of edge computations GraphBolt performs
// relative to GB-Reset (the paper's bar chart).
func Figure6(cfg Config) error {
	cfg = cfg.withDefaults()
	cells, err := sweep(cfg, cfg.Graphs())
	if err != nil {
		return err
	}
	cfg.printf("Figure 6: edge computations, GraphBolt / GB-Reset\n")
	cfg.printf("%-5s %-5s %9s %14s %14s %8s\n", "algo", "graph", "batch", "GB-Reset", "GraphBolt", "ratio")
	for _, c := range cells {
		ratio := 0.0
		if c.ResetEdges > 0 {
			ratio = float64(c.GBEdges) / float64(c.ResetEdges)
		}
		cfg.printf("%-5s %-5s %9d %14d %14d %8.3f\n",
			c.Algo, c.Graph, c.BatchSize, c.ResetEdges, c.GBEdges, ratio)
	}
	return nil
}

// Table6 is the parallelism study on the largest (YH stand-in) graph:
// the same sweep at full cores and at a third of them (the paper's
// 96- vs 32-core contrast).
func Table6(cfg Config) error {
	cfg = cfg.withDefaults()
	spec := cfg.YahooGraph()
	full := runtime.GOMAXPROCS(0)
	reduced := full / 3
	if reduced < 1 {
		reduced = 1
	}
	cfg.printf("Table 6: YH-scale runs at %d vs %d procs (ms)\n", full, reduced)
	cfg.printf("%-5s %6s %9s | %9s %9s %9s | %9s %9s\n",
		"algo", "procs", "batch", "Ligra", "GB-Reset", "GraphBolt", "xLigra", "xGB-Reset")
	for _, procs := range []int{full, reduced} {
		prev := runtime.GOMAXPROCS(procs)
		cells, err := sweep(cfg, []GraphSpec{spec})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return err
		}
		for _, c := range cells {
			cfg.printf("%-5s %6d %9d | %9.2f %9.2f %9.2f | %9s %9s\n",
				c.Algo, procs, c.BatchSize,
				ms(c.Ligra), ms(c.Reset), ms(c.GraphBolt),
				speedup(c.Ligra, c.GraphBolt), speedup(c.Reset, c.GraphBolt))
		}
	}
	return nil
}

// Table7 prints GraphBolt's absolute edge computations on YH and the
// percentage of GB-Reset's they represent.
func Table7(cfg Config) error {
	cfg = cfg.withDefaults()
	cells, err := sweep(cfg, []GraphSpec{cfg.YahooGraph()})
	if err != nil {
		return err
	}
	cfg.printf("Table 7: GraphBolt edge computations on YH (%% of GB-Reset)\n")
	cfg.printf("%-5s %9s %14s %10s\n", "algo", "batch", "edges", "% of reset")
	for _, c := range cells {
		pct := 0.0
		if c.ResetEdges > 0 {
			pct = 100 * float64(c.GBEdges) / float64(c.ResetEdges)
		}
		cfg.printf("%-5s %9d %14d %9.3f%%\n", c.Algo, c.BatchSize, c.GBEdges, pct)
	}
	return nil
}
