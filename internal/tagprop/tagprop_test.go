package tagprop

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTaggedChain(t *testing.T) {
	// Chain 0→1→2→3→4: mutating edge (1,2) tags 1,2,3,4 but not 0.
	g := graph.MustBuild(5, gen.Chain(5, gen.WeightUnit))
	tagged := Tagged(g, []graph.Edge{{From: 1, To: 2, Weight: 1}}, nil)
	for v := uint32(1); v <= 4; v++ {
		if !tagged.Get(v) {
			t.Fatalf("vertex %d not tagged", v)
		}
	}
	if tagged.Get(0) {
		t.Fatal("vertex 0 tagged despite being upstream")
	}
}

func TestTaggedDeletionEndpoints(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{{From: 0, To: 1, Weight: 1}, {From: 2, To: 3, Weight: 1}})
	// Deleting (2,3): endpoints and downstream of 3 (none) tagged.
	tagged := Tagged(g, nil, []graph.Edge{{From: 2, To: 3, Weight: 1}})
	if !tagged.Get(2) || !tagged.Get(3) {
		t.Fatal("deletion endpoints not tagged")
	}
	if tagged.Get(0) || tagged.Get(1) {
		t.Fatal("unrelated component tagged")
	}
}

func TestTaggedEmptyBatch(t *testing.T) {
	g := graph.MustBuild(10, gen.Chain(10, gen.WeightUnit))
	if got := TaggedFraction(g, nil, nil); got != 0 {
		t.Fatalf("empty batch tagged %v", got)
	}
}

func TestTaggedIgnoresOutOfRangeEndpoints(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	// Endpoint 99 outside the snapshot (e.g. pre-growth id): skipped.
	tagged := Tagged(g, []graph.Edge{{From: 99, To: 1, Weight: 1}}, nil)
	if !tagged.Get(1) {
		t.Fatal("valid endpoint not tagged")
	}
}

// TestTaggedMajorityOnSmallWorld reproduces the §2.2 claim: on a
// small-world graph, a single edge mutation tags the majority of
// vertices.
func TestTaggedMajorityOnSmallWorld(t *testing.T) {
	n := 2000
	g := graph.MustBuild(n, gen.SmallWorld(7, n, 3, 0.1, gen.WeightUnit))
	frac := TaggedFraction(g, []graph.Edge{{From: 5, To: 900, Weight: 1}}, nil)
	if frac < 0.5 {
		t.Fatalf("single mutation tagged only %.1f%% of a small-world graph", 100*frac)
	}
}

func TestTaggedFractionRMAT(t *testing.T) {
	n := 2000
	g := graph.MustBuild(n, gen.RMAT(8, n, 16000, gen.WeightUnit))
	frac := TaggedFraction(g, []graph.Edge{{From: 0, To: 1, Weight: 1}}, nil)
	// The giant strongly-connected component of an RMAT graph is
	// forward-reachable from the hub.
	if frac < 0.3 {
		t.Fatalf("hub mutation tagged only %.1f%%", 100*frac)
	}
}
