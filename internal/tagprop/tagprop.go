// Package tagprop implements the tag-propagation incremental strategy
// the paper argues against in §2.2 (the approach of GraphIn): when the
// graph mutates, tag every vertex whose value could have been affected —
// the forward-reachable set from the mutation endpoints — reset the
// tagged values, and recompute them while reusing untagged values.
//
// The paper's point, quantified by the TaggedFraction experiment, is
// that on real (small-world, skewed) graphs the forward-reachable set of
// even a single mutation covers most of the graph, so "the majority of
// vertex values get tagged to be thrown out" and incremental reuse
// collapses. GraphBolt's aggregation-value refinement touches only the
// vertices whose values actually change, which is usually a tiny subset
// of the tagged set.
package tagprop

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// Tagged computes the tag set for a mutation batch on the post-mutation
// snapshot: every vertex forward-reachable (via out-edges) from an
// endpoint of an added or deleted edge. This is the conservative
// could-be-affected set a tag-propagation system must reset under BSP
// semantics.
func Tagged(g *graph.Graph, added, deleted []graph.Edge) *bitset.Bitset {
	n := g.NumVertices()
	tagged := bitset.New(n)
	var work []graph.VertexID
	seedIfNew := func(v graph.VertexID) {
		if int(v) < n && tagged.Set(v) {
			work = append(work, v)
		}
	}
	for _, e := range added {
		// The target's aggregate changes directly; the source's
		// out-degree (hence its contributions) may change too.
		seedIfNew(e.To)
		seedIfNew(e.From)
	}
	for _, e := range deleted {
		seedIfNew(e.To)
		seedIfNew(e.From)
	}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		ts, _ := g.OutNeighbors(u)
		for _, t := range ts {
			if tagged.Set(t) {
				work = append(work, t)
			}
		}
	}
	return tagged
}

// TaggedFraction reports |tagged| / |V| for a batch — the reuse a
// tag-propagation system forfeits.
func TaggedFraction(g *graph.Graph, added, deleted []graph.Edge) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(Tagged(g, added, deleted).Count()) / float64(n)
}
