// Package gen produces deterministic synthetic graphs and edge streams.
// These stand in for the paper's real-world datasets (Wiki, UKDomain,
// Twitter, TwitterMPI, Friendster, Yahoo): the RMAT generator reproduces
// the skewed, sparse degree distributions that drive the paper's results
// (value stabilization, pruning effectiveness, Hi/Lo workload contrast).
package gen

// RNG is a small, fast, deterministic xorshift64* generator. It is used
// instead of math/rand so streams are reproducible across Go versions.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator; a zero seed is remapped to a fixed non-zero
// constant (xorshift state must be non-zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
