package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(3).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRMATShape(t *testing.T) {
	edges := RMAT(1, 1024, 8192, WeightUnit)
	if len(edges) != 8192 {
		t.Fatalf("edge count = %d", len(edges))
	}
	g := graph.MustBuild(1024, edges)
	// Skew check: the max out-degree should far exceed the average.
	maxDeg := 0
	for v := 0; v < 1024; v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 8192 / 1024
	if maxDeg < 4*avg {
		t.Fatalf("RMAT not skewed: max=%d avg=%d", maxDeg, avg)
	}
	// Determinism.
	edges2 := RMAT(1, 1024, 8192, WeightUnit)
	for i := range edges {
		if edges[i] != edges2[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
}

func TestRMATRespectsVertexBound(t *testing.T) {
	n := 1000 // not a power of two
	for _, e := range RMAT(5, n, 5000, WeightUniform) {
		if int(e.From) >= n || int(e.To) >= n {
			t.Fatalf("edge (%d,%d) out of range", e.From, e.To)
		}
	}
}

func TestWeightings(t *testing.T) {
	for _, e := range RMAT(9, 256, 1000, WeightUnit) {
		if e.Weight != 1 {
			t.Fatal("unit weight violated")
		}
	}
	for _, e := range RMAT(9, 256, 1000, WeightUniform) {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("uniform weight out of (0,1]: %v", e.Weight)
		}
	}
	for _, e := range RMAT(9, 256, 1000, WeightSmallInt) {
		if e.Weight < 1 || e.Weight > 10 || e.Weight != float64(int(e.Weight)) {
			t.Fatalf("small-int weight bad: %v", e.Weight)
		}
	}
}

func TestUniform(t *testing.T) {
	edges := Uniform(4, 100, 500, WeightUnit)
	if len(edges) != 500 {
		t.Fatalf("edge count = %d", len(edges))
	}
	for _, e := range edges {
		if int(e.From) >= 100 || int(e.To) >= 100 {
			t.Fatal("endpoint out of range")
		}
	}
}

func TestChain(t *testing.T) {
	edges := Chain(5, WeightUnit)
	if len(edges) != 4 {
		t.Fatalf("chain edges = %d", len(edges))
	}
	for i, e := range edges {
		if int(e.From) != i || int(e.To) != i+1 {
			t.Fatalf("chain edge %d = %v", i, e)
		}
	}
}

func TestGrid(t *testing.T) {
	edges := Grid(3, 4, WeightUnit)
	// right edges: 3*(4-1)=9, down edges: (3-1)*4=8
	if len(edges) != 17 {
		t.Fatalf("grid edges = %d, want 17", len(edges))
	}
}

func TestBipartite(t *testing.T) {
	users, items := 50, 20
	edges := Bipartite(6, users, items, 300, WeightUniform)
	if len(edges) < 600 {
		t.Fatalf("bipartite edges = %d", len(edges))
	}
	for i := 0; i < len(edges); i += 2 {
		fwd, back := edges[i], edges[i+1]
		if fwd.From != back.To || fwd.To != back.From || fwd.Weight != back.Weight {
			t.Fatal("bipartite reverse edge mismatch")
		}
		if int(fwd.From) >= users || int(fwd.To) < users || int(fwd.To) >= users+items {
			t.Fatalf("bipartite edge crosses wrong sides: %v", fwd)
		}
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	n, k := 500, 3
	edges := PreferentialAttachment(13, n, k, WeightUnit)
	g := graph.MustBuild(n, edges)
	// Every vertex after the k-th attaches exactly k edges.
	for v := k + 1; v < n; v++ {
		if g.OutDegree(graph.VertexID(v)) != k {
			t.Fatalf("vertex %d out-degree %d, want %d", v, g.OutDegree(graph.VertexID(v)), k)
		}
	}
	// Rich-get-richer: early vertices accumulate far more in-edges.
	early, late := 0, 0
	for v := 0; v < 10; v++ {
		early += g.InDegree(graph.VertexID(v))
	}
	for v := n - 10; v < n; v++ {
		late += g.InDegree(graph.VertexID(v))
	}
	if early <= 4*late {
		t.Fatalf("no preferential attachment skew: early=%d late=%d", early, late)
	}
	// No self loops.
	for _, e := range edges {
		if e.From == e.To {
			t.Fatal("self loop emitted")
		}
	}
}

func TestPreferentialAttachmentTiny(t *testing.T) {
	if got := PreferentialAttachment(1, 1, 3, WeightUnit); got != nil {
		t.Fatalf("n=1 should have no edges, got %v", got)
	}
	edges := PreferentialAttachment(1, 2, 3, WeightUnit)
	if len(edges) != 1 {
		t.Fatalf("n=2: %d edges, want 1", len(edges))
	}
}

func TestSmallWorldLattice(t *testing.T) {
	// beta=0: pure ring lattice, deterministic targets.
	edges := SmallWorld(3, 10, 2, 0, WeightUnit)
	if len(edges) != 20 {
		t.Fatalf("edges = %d, want 20", len(edges))
	}
	g := graph.MustBuild(10, edges)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(9, 0) || !g.HasEdge(9, 1) {
		t.Fatal("ring lattice edges missing")
	}
}

func TestSmallWorldRewiring(t *testing.T) {
	n := 200
	edges := SmallWorld(4, n, 2, 0.3, WeightUnit)
	rewired := 0
	for _, e := range edges {
		d := (int(e.To) - int(e.From) + n) % n
		if d != 1 && d != 2 {
			rewired++
		}
		if e.From == e.To {
			t.Fatal("self loop after rewiring")
		}
	}
	// ~30% of 400 edges should be rewired; accept a broad band.
	if rewired < 60 || rewired > 200 {
		t.Fatalf("rewired = %d of %d, outside plausible band", rewired, len(edges))
	}
}
