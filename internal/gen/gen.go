package gen

import (
	"repro/internal/graph"
)

// Weighting selects how edge weights are assigned.
type Weighting int

const (
	// WeightUnit gives every edge weight 1.
	WeightUnit Weighting = iota
	// WeightUniform gives weights uniform in (0, 1].
	WeightUniform
	// WeightSmallInt gives integer weights in [1, 10] (useful for SSSP).
	WeightSmallInt
)

func (w Weighting) weight(r *RNG) float64 {
	switch w {
	case WeightUniform:
		return 1 - r.Float64() // (0, 1]
	case WeightSmallInt:
		return float64(r.Intn(10) + 1)
	default:
		return 1
	}
}

// RMAT generates a recursive-matrix (Kronecker) graph with the classic
// skewed parameters a=0.57 b=0.19 c=0.19 d=0.05, the shape of the
// power-law web/social graphs in the paper's Table 2. n is rounded up to
// a power of two internally; emitted vertex ids stay < n via re-draw.
func RMAT(seed uint64, n, m int, w Weighting) []graph.Edge {
	return RMATParams(seed, n, m, 0.57, 0.19, 0.19, w)
}

// RMATParams is RMAT with explicit quadrant probabilities a, b, c
// (d = 1-a-b-c).
func RMATParams(seed uint64, n, m int, a, b, c float64, w Weighting) []graph.Edge {
	r := NewRNG(seed)
	levels := 0
	for 1<<levels < n {
		levels++
	}
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				v |= 1 << l
			case p < a+b+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n {
			continue
		}
		edges = append(edges, graph.Edge{From: graph.VertexID(u), To: graph.VertexID(v), Weight: w.weight(r)})
	}
	return edges
}

// Uniform generates m edges with independently uniform endpoints — the
// Erdős–Rényi contrast case (no skew, so pruning pays off less).
func Uniform(seed uint64, n, m int, w Weighting) []graph.Edge {
	r := NewRNG(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			From:   graph.VertexID(r.Intn(n)),
			To:     graph.VertexID(r.Intn(n)),
			Weight: w.weight(r),
		}
	}
	return edges
}

// Chain generates the path 0→1→…→n-1, a worst case for incremental
// propagation depth (every mutation's impact is maximally transitive).
func Chain(n int, w Weighting) []graph.Edge {
	r := NewRNG(1)
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{From: graph.VertexID(i), To: graph.VertexID(i + 1), Weight: w.weight(r)})
	}
	return edges
}

// Grid generates a directed 2D grid of rows×cols vertices with right and
// down edges — a bounded-degree planar contrast case.
func Grid(rows, cols int, w Weighting) []graph.Edge {
	r := NewRNG(2)
	var edges []graph.Edge
	id := func(i, j int) graph.VertexID { return graph.VertexID(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				edges = append(edges, graph.Edge{From: id(i, j), To: id(i, j+1), Weight: w.weight(r)})
			}
			if i+1 < rows {
				edges = append(edges, graph.Edge{From: id(i, j), To: id(i+1, j), Weight: w.weight(r)})
			}
		}
	}
	return edges
}

// Bipartite generates a user→item bipartite graph (users [0, users),
// items [users, users+items)) with RMAT-skewed user activity, the shape
// Collaborative Filtering runs on.
func Bipartite(seed uint64, users, items, m int, w Weighting) []graph.Edge {
	r := NewRNG(seed)
	edges := make([]graph.Edge, 0, 2*m)
	for len(edges) < 2*m {
		// Skew user choice: square the uniform draw toward low ids.
		uf := r.Float64()
		u := int(uf * uf * float64(users))
		if u >= users {
			u = users - 1
		}
		it := users + r.Intn(items)
		wt := w.weight(r)
		// CF uses undirected interactions: emit both directions.
		edges = append(edges,
			graph.Edge{From: graph.VertexID(u), To: graph.VertexID(it), Weight: wt},
			graph.Edge{From: graph.VertexID(it), To: graph.VertexID(u), Weight: wt},
		)
	}
	return edges
}

// PreferentialAttachment generates a Barabási–Albert graph: vertices
// arrive one at a time and attach k out-edges to existing vertices with
// probability proportional to their current degree — the generative
// model behind the power laws RMAT imitates. Useful as an alternative
// skewed substrate for ablations.
func PreferentialAttachment(seed uint64, n, k int, w Weighting) []graph.Edge {
	if n < 2 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	r := NewRNG(seed)
	// endpoints holds one entry per edge endpoint; sampling uniformly
	// from it is degree-proportional sampling.
	endpoints := []graph.VertexID{0}
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		attach := k
		if v < k {
			attach = v
		}
		chosen := map[graph.VertexID]struct{}{}
		for len(chosen) < attach {
			t := endpoints[r.Intn(len(endpoints))]
			if int(t) == v {
				continue
			}
			chosen[t] = struct{}{}
		}
		for t := range chosen {
			edges = append(edges, graph.Edge{From: graph.VertexID(v), To: t, Weight: w.weight(r)})
			endpoints = append(endpoints, graph.VertexID(v), t)
		}
	}
	return edges
}

// SmallWorld generates a Watts–Strogatz graph: a ring lattice where each
// vertex points at its k clockwise neighbors, with each edge's target
// rewired uniformly at random with probability beta. Low diameter with
// high clustering — the regime where transitive mutation impact spreads
// fastest.
func SmallWorld(seed uint64, n, k int, beta float64, w Weighting) []graph.Edge {
	r := NewRNG(seed)
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			t := (v + j) % n
			if beta > 0 && r.Float64() < beta {
				for {
					t = r.Intn(n)
					if t != v {
						break
					}
				}
			}
			edges = append(edges, graph.Edge{From: graph.VertexID(v), To: graph.VertexID(t), Weight: w.weight(r)})
		}
	}
	return edges
}
