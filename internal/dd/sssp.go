package dd

// WeightedEdge is the value side of the SSSP edge arrangement.
type WeightedEdge struct {
	Dst    uint32
	Weight float64
}

type distRec = KV[uint32, float64]

// SSSP is the differential-dataflow single-source shortest paths of
// Fig. 9: an iterate loop whose body joins current distances with the
// edge arrangement and min-reduces candidates (including the incoming
// distances themselves) per destination. The min-reduce keeps each
// destination's full candidate multiset — DD's "ordered map of path
// values and counts" (§5.4B) — which is what makes its deletions cheap
// relative to GraphBolt's pull re-evaluation.
type SSSP struct {
	source  uint32
	maxIter int

	edges Multiset[KV[uint32, WeightedEdge]]

	cand []*Join[uint32, float64, WeightedEdge, distRec]
	mins []*Reduce[uint32, float64, float64]
	// dists[i] is the collection entering loop iteration i; dists[0] is
	// the root {(source, 0)}. Invariant: len(dists) == len(cand)+1.
	dists []Multiset[distRec]
}

// NewSSSP creates the dataflow; maxIter caps loop depth.
func NewSSSP(source uint32, maxIter int) *SSSP {
	root := Multiset[distRec]{}
	root.Apply(Diff[distRec]{distRec{source, 0}, +1})
	return &SSSP{
		source:  source,
		maxIter: maxIter,
		edges:   Multiset[KV[uint32, WeightedEdge]]{},
		dists:   []Multiset[distRec]{root},
	}
}

// minReduce keeps the smallest candidate distance.
func minReduce(_ uint32, g Multiset[float64]) (float64, bool) {
	best := 0.0
	first := true
	for v := range g {
		if first || v < best {
			best = v
			first = false
		}
	}
	return best, !first
}

func fullDiffs[T comparable](m Multiset[T]) []Diff[T] {
	out := make([]Diff[T], 0, len(m))
	for rec, c := range m {
		out = append(out, Diff[T]{rec, c})
	}
	return out
}

func equalMultisets[T comparable](a, b Multiset[T]) bool {
	if len(a) != len(b) {
		return false
	}
	for rec, c := range a {
		if b[rec] != c {
			return false
		}
	}
	return true
}

// outCollection materializes a reduce's current output as a multiset.
func outCollection(r *Reduce[uint32, float64, float64]) Multiset[distRec] {
	m := Multiset[distRec]{}
	for k, v := range r.out {
		m.Apply(Diff[distRec]{distRec{k, v}, +1})
	}
	return m
}

// Update advances one epoch, also used to load the initial edges.
func (s *SSSP) Update(addEdges, delEdges []KV[uint32, WeightedEdge]) {
	var dEdges []Diff[KV[uint32, WeightedEdge]]
	for _, e := range addEdges {
		dEdges = append(dEdges, Diff[KV[uint32, WeightedEdge]]{e, +1})
		s.edges.Apply(Diff[KV[uint32, WeightedEdge]]{e, +1})
	}
	for _, e := range delEdges {
		if s.edges[e] == 0 {
			continue
		}
		dEdges = append(dEdges, Diff[KV[uint32, WeightedEdge]]{e, -1})
		s.edges.Apply(Diff[KV[uint32, WeightedEdge]]{e, -1})
	}

	var dDists []Diff[distRec] // diffs entering level i (none for the root)
	for i := 0; i < s.maxIter; i++ {
		if i < len(s.cand) {
			// Existing level: fold the incoming diffs through. Every
			// existing level must see the edge diffs even when distance
			// diffs have died out, to keep its arrangement current. The
			// level's output diffs become the next level's input and are
			// folded into its collection there — exactly once.
			s.dists[i].ApplyAll(dDists)
			dC := s.cand[i].Update(dDists, dEdges)
			dDists = s.mins[i].Update(append(dC, dDists...))
			if len(dDists) == 0 && i+1 == len(s.cand) {
				return // tail reached with nothing escaping
			}
			continue
		}

		// A deeper level is needed only while the collection keeps
		// changing from one iteration to the next (level 0 always runs).
		s.dists[i].ApplyAll(dDists)
		if i > 0 && equalMultisets(s.dists[i], s.dists[i-1]) {
			return
		}
		j := NewJoin[uint32, float64, WeightedEdge, distRec](
			func(_ uint32, d float64, e WeightedEdge) distRec {
				return distRec{e.Dst, d + e.Weight}
			})
		r := NewReduce[uint32, float64, float64](minReduce)
		dIn := fullDiffs(s.dists[i])
		dC := j.Update(dIn, fullDiffs(s.edges))
		r.Update(append(dC, dIn...))
		s.cand = append(s.cand, j)
		s.mins = append(s.mins, r)
		s.dists = append(s.dists, outCollection(r))
		dDists = nil
	}
}

// Distances materializes the deepest iteration's output.
func (s *SSSP) Distances() map[uint32]float64 {
	out := map[uint32]float64{}
	for rec := range s.dists[len(s.dists)-1] {
		out[rec.Key] = rec.Val
	}
	return out
}

// Depth returns the current unrolled loop depth.
func (s *SSSP) Depth() int { return len(s.cand) }

// Stats reports cumulative operator work.
func (s *SSSP) Stats() int64 {
	var total int64
	for i := range s.cand {
		total += s.cand[i].Work + s.mins[i].Work
	}
	return total
}
