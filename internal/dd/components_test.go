package dd

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// refCC computes min-label components by iteration.
func refCC(n int, edges []graph.Edge) map[uint32]float64 {
	lbl := make([]float64, n)
	for v := range lbl {
		lbl[v] = float64(v)
	}
	for {
		changed := false
		for _, e := range edges {
			if lbl[e.From] < lbl[e.To] {
				lbl[e.To] = lbl[e.From]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := map[uint32]float64{}
	for v, l := range lbl {
		out[uint32(v)] = l
	}
	return out
}

func symmetrize(edges []graph.Edge) []graph.Edge {
	var out []graph.Edge
	for _, e := range edges {
		out = append(out, e, graph.Edge{From: e.To, To: e.From, Weight: e.Weight})
	}
	return out
}

func ccEdges(edges []graph.Edge) []KV[uint32, uint32] {
	out := make([]KV[uint32, uint32], len(edges))
	for i, e := range edges {
		out[i] = KV[uint32, uint32]{e.From, e.To}
	}
	return out
}

func TestComponentsInitial(t *testing.T) {
	n := 30
	edges := symmetrize(gen.RMAT(71, n, 60, gen.WeightUnit))
	verts := make([]uint32, n)
	for i := range verts {
		verts[i] = uint32(i)
	}
	cc := NewComponents(4 * n)
	cc.Update(verts, ccEdges(edges), nil)
	want := refCC(n, edges)
	got := cc.Labels()
	for v := 0; v < n; v++ {
		if got[uint32(v)] != want[uint32(v)] {
			t.Fatalf("v%d: %v vs %v", v, got[uint32(v)], want[uint32(v)])
		}
	}
}

// Property: incremental component labels match the reference across
// epochs with symmetric insertions and deletions (deletions can split
// components — the hard direction).
func TestQuickComponentsEpochs(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		n := 5 + r.Intn(20)
		base := symmetrize(gen.RMAT(seed, n, r.Intn(3*n), gen.WeightUnit))
		verts := make([]uint32, n)
		for i := range verts {
			verts[i] = uint32(i)
		}
		cc := NewComponents(4 * n)
		cc.Update(verts, ccEdges(base), nil)
		current := append([]graph.Edge(nil), base...)
		for epoch := 0; epoch < 1+r.Intn(3); epoch++ {
			var adds, dels []graph.Edge
			for i := 0; i < r.Intn(4); i++ {
				e := graph.Edge{From: graph.VertexID(r.Intn(n)), To: graph.VertexID(r.Intn(n)), Weight: 1}
				adds = append(adds, e, graph.Edge{From: e.To, To: e.From, Weight: 1})
			}
			for i := 0; i < r.Intn(4) && len(current) >= 2; i++ {
				k := r.Intn(len(current) / 2)
				dels = append(dels, current[2*k], current[2*k+1])
				current = append(current[:2*k], current[2*k+2:]...)
			}
			current = append(current, adds...)
			cc.Update(nil, ccEdges(adds), ccEdges(dels))
			want := refCC(n, current)
			got := cc.Labels()
			for v := 0; v < n; v++ {
				if got[uint32(v)] != want[uint32(v)] {
					t.Logf("seed %d epoch %d v%d: %v vs %v", seed, epoch, v, got[uint32(v)], want[uint32(v)])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
