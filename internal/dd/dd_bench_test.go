package dd

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkPageRankEpoch(b *testing.B) {
	n := 2048
	edges := gen.RMAT(5, n, 16384, gen.WeightUnit)
	verts := make([]uint32, n)
	for i := range verts {
		verts[i] = uint32(i)
	}
	pr := NewPageRank(10, 0.85)
	pr.Update(verts, prEdges(edges), nil)
	batch := gen.RMAT(6, n, 10, gen.WeightUnit)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Update(nil, prEdges(batch), nil)
		pr.Update(nil, nil, prEdges(batch))
	}
}

func BenchmarkSSSPEpoch(b *testing.B) {
	n := 2048
	edges := gen.RMAT(7, n, 16384, gen.WeightSmallInt)
	s := NewSSSP(0, 4*n)
	s.Update(ssspEdges(edges), nil)
	batch := gen.RMAT(8, n, 10, gen.WeightSmallInt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(ssspEdges(batch), nil)
		s.Update(nil, ssspEdges(batch))
	}
}
