package dd

// Components is a differential-dataflow weakly-connected-components
// computation: labels (min reachable vertex id) iterate through a
// join-with-edges / min-reduce loop, exactly like SSSP but over label
// space. Run it on symmetric edge sets for weakly connected semantics.
// It demonstrates the runtime's iterate pattern on a second
// non-decomposable reduction and backs the library's CC program in
// cross-checks.
type Components struct {
	maxIter int

	edges Multiset[KV[uint32, uint32]] // src → dst
	verts Multiset[uint32]

	prop  []*Join[uint32, float64, uint32, distRec]
	mins  []*Reduce[uint32, float64, float64]
	lbls  []Multiset[distRec] // labels entering iteration i
	dirty bool
}

// NewComponents creates the dataflow; maxIter caps loop depth.
func NewComponents(maxIter int) *Components {
	return &Components{
		maxIter: maxIter,
		edges:   Multiset[KV[uint32, uint32]]{},
		verts:   Multiset[uint32]{},
		lbls:    []Multiset[distRec]{{}},
	}
}

// Update advances one epoch with vertex and edge changes.
func (c *Components) Update(addVerts []uint32, addEdges, delEdges []KV[uint32, uint32]) {
	var dLbls []Diff[distRec]
	for _, v := range addVerts {
		if c.verts[v] > 0 {
			continue
		}
		c.verts.Apply(Diff[uint32]{v, +1})
		dLbls = append(dLbls, Diff[distRec]{distRec{v, float64(v)}, +1})
	}
	var dEdges []Diff[KV[uint32, uint32]]
	for _, e := range addEdges {
		dEdges = append(dEdges, Diff[KV[uint32, uint32]]{e, +1})
		c.edges.Apply(Diff[KV[uint32, uint32]]{e, +1})
	}
	for _, e := range delEdges {
		if c.edges[e] == 0 {
			continue
		}
		dEdges = append(dEdges, Diff[KV[uint32, uint32]]{e, -1})
		c.edges.Apply(Diff[KV[uint32, uint32]]{e, -1})
	}

	for i := 0; i < c.maxIter; i++ {
		if i < len(c.prop) {
			// Output diffs fold into the next level's collection when
			// that level consumes them — exactly once.
			c.lbls[i].ApplyAll(dLbls)
			dC := c.prop[i].Update(dLbls, dEdges)
			dLbls = c.mins[i].Update(append(dC, dLbls...))
			if len(dLbls) == 0 && i+1 == len(c.prop) {
				return
			}
			continue
		}
		// Unlike SSSP (whose root collection never changes), label diffs
		// can enter at level 0 (new vertices); fold them in before
		// bootstrapping from the full collection.
		c.lbls[i].ApplyAll(dLbls)
		if i > 0 && equalMultisets(c.lbls[i], c.lbls[i-1]) {
			return
		}
		j := NewJoin[uint32, float64, uint32, distRec](
			func(_ uint32, lbl float64, dst uint32) distRec {
				return distRec{dst, lbl}
			})
		r := NewReduce[uint32, float64, float64](minReduce)
		dIn := fullDiffs(c.lbls[i])
		dC := j.Update(dIn, MapDiffs(fullDiffs(c.edges), func(e KV[uint32, uint32]) KV[uint32, uint32] { return e }))
		r.Update(append(dC, dIn...))
		c.prop = append(c.prop, j)
		c.mins = append(c.mins, r)
		c.lbls = append(c.lbls, outCollection(r))
		dLbls = nil
	}
}

// Labels materializes the deepest iteration's component labels.
func (c *Components) Labels() map[uint32]float64 {
	out := map[uint32]float64{}
	for rec := range c.lbls[len(c.lbls)-1] {
		out[rec.Key] = rec.Val
	}
	return out
}

// Stats reports cumulative operator work.
func (c *Components) Stats() int64 {
	var total int64
	for i := range c.prop {
		total += c.prop[i].Work + c.mins[i].Work
	}
	return total
}
