package dd

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestMultisetApply(t *testing.T) {
	m := Multiset[int]{}
	m.Apply(Diff[int]{5, 2})
	m.Apply(Diff[int]{5, -1})
	if m[5] != 1 {
		t.Fatalf("count = %d", m[5])
	}
	m.Apply(Diff[int]{5, -1})
	if _, ok := m[5]; ok {
		t.Fatal("zero count not removed")
	}
}

func TestJoinBilinear(t *testing.T) {
	j := NewJoin[int, string, string, string](func(k int, a, b string) string { return a + b })
	out := j.Update(
		[]Diff[KV[int, string]]{{KV[int, string]{1, "x"}, 1}},
		[]Diff[KV[int, string]]{{KV[int, string]{1, "y"}, 1}},
	)
	// dL⋈dR must be produced exactly once.
	if len(out) != 1 || out[0].Rec != "xy" || out[0].Delta != 1 {
		t.Fatalf("out = %v", out)
	}
	// Retraction of the left side removes the pair.
	out = j.Update([]Diff[KV[int, string]]{{KV[int, string]{1, "x"}, -1}}, nil)
	if len(out) != 1 || out[0].Rec != "xy" || out[0].Delta != -1 {
		t.Fatalf("retract out = %v", out)
	}
}

func TestReduceRetractsOldResult(t *testing.T) {
	r := NewReduce[int, int, int](func(_ int, g Multiset[int]) (int, bool) {
		sum := 0
		for v, c := range g {
			sum += v * c
		}
		return sum, true
	})
	out := r.Update([]Diff[KV[int, int]]{{KV[int, int]{1, 10}, 1}})
	if len(out) != 1 || out[0].Rec.Val != 10 || out[0].Delta != 1 {
		t.Fatalf("first = %v", out)
	}
	out = r.Update([]Diff[KV[int, int]]{{KV[int, int]{1, 5}, 1}})
	// Expect retraction of 10, insertion of 15.
	var sawRetract, sawInsert bool
	for _, d := range out {
		if d.Rec.Val == 10 && d.Delta == -1 {
			sawRetract = true
		}
		if d.Rec.Val == 15 && d.Delta == 1 {
			sawInsert = true
		}
	}
	if !sawRetract || !sawInsert {
		t.Fatalf("out = %v", out)
	}
	// Emptying the group retracts entirely.
	out = r.Update([]Diff[KV[int, int]]{{KV[int, int]{1, 10}, -1}, {KV[int, int]{1, 5}, -1}})
	if len(out) != 1 || out[0].Delta != -1 {
		t.Fatalf("empty-group out = %v", out)
	}
}

func TestReduceUnchangedEmitsNothing(t *testing.T) {
	r := NewReduce[int, int, int](func(_ int, g Multiset[int]) (int, bool) { return 42, true })
	r.Update([]Diff[KV[int, int]]{{KV[int, int]{1, 1}, 1}})
	out := r.Update([]Diff[KV[int, int]]{{KV[int, int]{1, 2}, 1}})
	if len(out) != 0 {
		t.Fatalf("constant reduce emitted %v", out)
	}
}

// referencePR computes K damped BSP PageRank iterations directly.
func referencePR(n int, edges []graph.Edge, k int, damping float64) []float64 {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.From]++
	}
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1
	}
	for it := 0; it < k; it++ {
		agg := make([]float64, n)
		for _, e := range edges {
			agg[e.To] += ranks[e.From] / float64(deg[e.From])
		}
		for v := range ranks {
			ranks[v] = (1 - damping) + damping*agg[v]
		}
	}
	return ranks
}

func prEdges(edges []graph.Edge) []KV[uint32, uint32] {
	out := make([]KV[uint32, uint32], len(edges))
	for i, e := range edges {
		out[i] = KV[uint32, uint32]{e.From, e.To}
	}
	return out
}

func TestPageRankMatchesReference(t *testing.T) {
	edges := gen.RMAT(61, 64, 400, gen.WeightUnit)
	n := 64
	verts := make([]uint32, n)
	for i := range verts {
		verts[i] = uint32(i)
	}
	pr := NewPageRank(6, 0.85)
	pr.Update(verts, prEdges(edges), nil)
	want := referencePR(n, edges, 6, 0.85)
	got := pr.Ranks()
	for v := 0; v < n; v++ {
		if math.Abs(got[uint32(v)]-want[v]) > 1e-9 {
			t.Fatalf("v%d: %v vs %v", v, got[uint32(v)], want[v])
		}
	}
}

func TestPageRankIncrementalEpochs(t *testing.T) {
	n := 48
	edges := gen.RMAT(62, n, 300, gen.WeightUnit)
	verts := make([]uint32, n)
	for i := range verts {
		verts[i] = uint32(i)
	}
	pr := NewPageRank(5, 0.85)
	pr.Update(verts, prEdges(edges), nil)

	r := gen.NewRNG(7)
	current := append([]graph.Edge(nil), edges...)
	for epoch := 0; epoch < 4; epoch++ {
		var adds []graph.Edge
		for i := 0; i < 10; i++ {
			adds = append(adds, graph.Edge{From: graph.VertexID(r.Intn(n)), To: graph.VertexID(r.Intn(n)), Weight: 1})
		}
		var dels []graph.Edge
		for i := 0; i < 5 && len(current) > 0; i++ {
			k := r.Intn(len(current))
			dels = append(dels, current[k])
			current = append(current[:k], current[k+1:]...)
		}
		current = append(current, adds...)
		pr.Update(nil, prEdges(adds), prEdges(dels))

		want := referencePR(n, current, 5, 0.85)
		got := pr.Ranks()
		for v := 0; v < n; v++ {
			if math.Abs(got[uint32(v)]-want[v]) > 1e-9 {
				t.Fatalf("epoch %d v%d: %v vs %v", epoch, v, got[uint32(v)], want[v])
			}
		}
	}
	if pr.Stats() == 0 {
		t.Fatal("no work recorded")
	}
}

func TestPageRankDeleteMissingEdgeNoop(t *testing.T) {
	pr := NewPageRank(3, 0.85)
	pr.Update([]uint32{0, 1}, []KV[uint32, uint32]{{0, 1}}, nil)
	before := pr.Ranks()
	pr.Update(nil, nil, []KV[uint32, uint32]{{1, 0}})
	after := pr.Ranks()
	for v, r := range before {
		if after[v] != r {
			t.Fatal("missing deletion changed ranks")
		}
	}
}

// referenceSSSP is Bellman-Ford.
func referenceSSSP(n int, edges []graph.Edge, src uint32) map[uint32]float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range edges {
			if nd := dist[e.From] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := map[uint32]float64{}
	for v, d := range dist {
		if !math.IsInf(d, 1) {
			out[uint32(v)] = d
		}
	}
	return out
}

func ssspEdges(edges []graph.Edge) []KV[uint32, WeightedEdge] {
	out := make([]KV[uint32, WeightedEdge], len(edges))
	for i, e := range edges {
		out[i] = KV[uint32, WeightedEdge]{e.From, WeightedEdge{e.To, e.Weight}}
	}
	return out
}

func ssspMatches(got, want map[uint32]float64) bool {
	if len(got) != len(want) {
		return false
	}
	for v, d := range want {
		if got[v] != d {
			return false
		}
	}
	return true
}

func TestSSSPMatchesReference(t *testing.T) {
	n := 40
	edges := gen.RMAT(63, n, 250, gen.WeightSmallInt)
	s := NewSSSP(0, 4*n)
	s.Update(ssspEdges(edges), nil)
	if !ssspMatches(s.Distances(), referenceSSSP(n, edges, 0)) {
		t.Fatalf("initial mismatch")
	}
}

// Property: incremental SSSP epochs match Bellman-Ford on the final
// edge set, including deletions that lengthen or disconnect paths.
func TestQuickSSSPEpochs(t *testing.T) {
	check := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		n := 5 + r.Intn(25)
		m := r.Intn(4 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{
				From:   graph.VertexID(r.Intn(n)),
				To:     graph.VertexID(r.Intn(n)),
				Weight: float64(r.Intn(9) + 1),
			}
		}
		s := NewSSSP(0, 4*n)
		s.Update(ssspEdges(edges), nil)
		current := append([]graph.Edge(nil), edges...)
		for epoch := 0; epoch < 1+r.Intn(3); epoch++ {
			var adds, dels []graph.Edge
			for i := 0; i < r.Intn(6); i++ {
				adds = append(adds, graph.Edge{
					From:   graph.VertexID(r.Intn(n)),
					To:     graph.VertexID(r.Intn(n)),
					Weight: float64(r.Intn(9) + 1),
				})
			}
			for i := 0; i < r.Intn(6) && len(current) > 0; i++ {
				k := r.Intn(len(current))
				dels = append(dels, current[k])
				current = append(current[:k], current[k+1:]...)
			}
			current = append(current, adds...)
			s.Update(ssspEdges(adds), ssspEdges(dels))
			if !ssspMatches(s.Distances(), referenceSSSP(n, current, 0)) {
				t.Logf("seed %d epoch %d: got %v want %v", seed, epoch, s.Distances(), referenceSSSP(n, current, 0))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
