package dd

import "sort"

// PageRank is the differential-dataflow formulation of the paper's
// Fig. 8 comparison: ranks flow through an unrolled loop of K
// iterations, each iteration a join of ranks with out-degrees, a join
// with the edge arrangement pushing shares to destinations, and a
// damped-sum reduce. Every operator instance keeps its own per-iteration
// trace, which is the generic-system overhead GraphBolt avoids.
type PageRank struct {
	iterations int
	damping    float64

	vertices Multiset[uint32]
	edges    Multiset[KV[uint32, uint32]] // src → dst

	degs      *Reduce[uint32, uint32, int]
	rankdeg   []*Join[uint32, float64, int, KV[uint32, float64]]
	contrib   []*Join[uint32, float64, uint32, KV[uint32, float64]]
	sumReduce []*Reduce[uint32, float64, float64]
}

// NewPageRank creates a dataflow computing K damped iterations.
func NewPageRank(iterations int, damping float64) *PageRank {
	pr := &PageRank{
		iterations: iterations,
		damping:    damping,
		vertices:   Multiset[uint32]{},
		edges:      Multiset[KV[uint32, uint32]]{},
		degs: NewReduce[uint32, uint32, int](func(_ uint32, g Multiset[uint32]) (int, bool) {
			total := 0
			for _, c := range g {
				total += c
			}
			return total, total > 0
		}),
	}
	for i := 0; i < iterations; i++ {
		pr.rankdeg = append(pr.rankdeg, NewJoin[uint32, float64, int, KV[uint32, float64]](
			func(v uint32, rank float64, deg int) KV[uint32, float64] {
				return KV[uint32, float64]{v, rank / float64(deg)}
			}))
		pr.contrib = append(pr.contrib, NewJoin[uint32, float64, uint32, KV[uint32, float64]](
			func(_ uint32, share float64, dst uint32) KV[uint32, float64] {
				return KV[uint32, float64]{dst, share}
			}))
		pr.sumReduce = append(pr.sumReduce, NewReduce[uint32, float64, float64](pr.dampedSum))
	}
	return pr
}

// dampedSum reduces a group of shares deterministically (sorted by value
// so incremental and from-scratch epochs agree bit-for-bit).
func (pr *PageRank) dampedSum(_ uint32, g Multiset[float64]) (float64, bool) {
	type vc struct {
		v float64
		c int
	}
	items := make([]vc, 0, len(g))
	for v, c := range g {
		items = append(items, vc{v, c})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	var sum float64
	for _, it := range items {
		sum += it.v * float64(it.c)
	}
	return (1 - pr.damping) + pr.damping*sum, true
}

// Stats reports cumulative operator work (record inspections).
func (pr *PageRank) Stats() int64 {
	total := pr.degs.Work
	for i := 0; i < pr.iterations; i++ {
		total += pr.rankdeg[i].Work + pr.contrib[i].Work + pr.sumReduce[i].Work
	}
	return total
}

// Update advances one epoch: vertices/edges are inserted and removed,
// and the unrolled loop incrementally brings every iteration's state up
// to date. It is also how the initial epoch is loaded (from empty).
func (pr *PageRank) Update(addVerts []uint32, addEdges, delEdges []KV[uint32, uint32]) {
	var dVerts []Diff[uint32]
	for _, v := range addVerts {
		if pr.vertices[v] == 0 {
			dVerts = append(dVerts, Diff[uint32]{v, +1})
			pr.vertices.Apply(Diff[uint32]{v, +1})
		}
	}
	ensureVertex := func(v uint32) {
		if pr.vertices[v] == 0 {
			dVerts = append(dVerts, Diff[uint32]{v, +1})
			pr.vertices.Apply(Diff[uint32]{v, +1})
		}
	}
	var dEdges []Diff[KV[uint32, uint32]]
	for _, e := range addEdges {
		ensureVertex(e.Key)
		ensureVertex(e.Val)
		dEdges = append(dEdges, Diff[KV[uint32, uint32]]{e, +1})
		pr.edges.Apply(Diff[KV[uint32, uint32]]{e, +1})
	}
	for _, e := range delEdges {
		if pr.edges[e] == 0 {
			continue // deleting a non-existent edge is a no-op
		}
		dEdges = append(dEdges, Diff[KV[uint32, uint32]]{e, -1})
		pr.edges.Apply(Diff[KV[uint32, uint32]]{e, -1})
	}

	// Degree view of the edge diffs.
	dDegs := pr.degs.Update(MapDiffs(dEdges, func(e KV[uint32, uint32]) KV[uint32, uint32] {
		return e // keyed by source, value dst (multiplicity = degree)
	}))

	// ranks_0: every vertex starts at 1.
	dRanks := MapDiffs(dVerts, func(v uint32) KV[uint32, float64] {
		return KV[uint32, float64]{v, 1}
	})
	// Base shares keep every vertex present in every sum group.
	dBase := MapDiffs(dVerts, func(v uint32) KV[uint32, float64] {
		return KV[uint32, float64]{v, 0}
	})

	for i := 0; i < pr.iterations; i++ {
		dShares := pr.rankdeg[i].Update(dRanks, dDegs)
		dContrib := pr.contrib[i].Update(dShares, dEdges)
		dRanks = pr.sumReduce[i].Update(append(dContrib, dBase...))
	}
}

// Ranks materializes the final iteration's ranks.
func (pr *PageRank) Ranks() map[uint32]float64 {
	if pr.iterations == 0 {
		out := make(map[uint32]float64, len(pr.vertices))
		for v := range pr.vertices {
			out[v] = 1
		}
		return out
	}
	last := pr.sumReduce[pr.iterations-1]
	out := make(map[uint32]float64, len(last.out))
	for k, v := range last.out {
		out[k] = v
	}
	return out
}
