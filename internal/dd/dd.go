// Package dd is a from-scratch miniature differential dataflow runtime
// (McSherry et al., CIDR'13), the generalized incremental-processing
// system GraphBolt is compared against in §5.4(A). It models collections
// as multisets evolving along two dimensions — input epochs and loop
// iterations — and implements the differential operators (map, join,
// reduce) as stateful nodes that consume and emit multiset diffs. Loops
// keep one operator instance per iteration, mirroring DD's per-timestamp
// arrangements; that generic trace state is exactly the overhead the
// paper's graph-specialized engine avoids.
//
// The runtime is single-threaded and favors clarity: the evaluation's
// claim it supports is qualitative (a generic diff engine does more
// bookkeeping per update than a graph-aware one), not absolute numbers.
package dd

// Diff is a signed multiset update: Delta copies of Rec appear (positive)
// or disappear (negative).
type Diff[T comparable] struct {
	Rec   T
	Delta int
}

// Multiset is a counted set; absent keys have count zero.
type Multiset[T comparable] map[T]int

// Apply folds a diff into the multiset, dropping zeroed entries.
func (m Multiset[T]) Apply(d Diff[T]) {
	c := m[d.Rec] + d.Delta
	if c == 0 {
		delete(m, d.Rec)
	} else {
		m[d.Rec] = c
	}
}

// ApplyAll folds a batch of diffs.
func (m Multiset[T]) ApplyAll(ds []Diff[T]) {
	for _, d := range ds {
		m.Apply(d)
	}
}

// KV is a keyed record.
type KV[K comparable, V comparable] struct {
	Key K
	Val V
}

// Join is an incremental binary equi-join: output diffs are the bilinear
// expansion dL⋈R + L⋈dR + dL⋈dR, maintained against cached keyed
// multisets of both inputs (DD's arrangements).
type Join[K comparable, A comparable, B comparable, O comparable] struct {
	left  map[K]Multiset[A]
	right map[K]Multiset[B]
	f     func(K, A, B) O

	// Work counts record-pair inspections, the DD analogue of edge
	// computations.
	Work int64
}

// NewJoin builds a join with output function f.
func NewJoin[K comparable, A comparable, B comparable, O comparable](f func(K, A, B) O) *Join[K, A, B, O] {
	return &Join[K, A, B, O]{
		left:  map[K]Multiset[A]{},
		right: map[K]Multiset[B]{},
		f:     f,
	}
}

// Update consumes diffs on both inputs and returns output diffs. The
// left diffs are matched against the pre-update right trace, then folded
// in; right diffs then see the updated left, which accounts for the
// dL⋈dR term exactly once.
func (j *Join[K, A, B, O]) Update(dl []Diff[KV[K, A]], dr []Diff[KV[K, B]]) []Diff[O] {
	acc := map[O]int{}
	for _, d := range dl {
		for b, bc := range j.right[d.Rec.Key] {
			acc[j.f(d.Rec.Key, d.Rec.Val, b)] += d.Delta * bc
			j.Work++
		}
		g := j.left[d.Rec.Key]
		if g == nil {
			g = Multiset[A]{}
			j.left[d.Rec.Key] = g
		}
		g.Apply(Diff[A]{d.Rec.Val, d.Delta})
		if len(g) == 0 {
			delete(j.left, d.Rec.Key)
		}
	}
	for _, d := range dr {
		for a, ac := range j.left[d.Rec.Key] {
			acc[j.f(d.Rec.Key, a, d.Rec.Val)] += ac * d.Delta
			j.Work++
		}
		g := j.right[d.Rec.Key]
		if g == nil {
			g = Multiset[B]{}
			j.right[d.Rec.Key] = g
		}
		g.Apply(Diff[B]{d.Rec.Val, d.Delta})
		if len(g) == 0 {
			delete(j.right, d.Rec.Key)
		}
	}
	return compact(acc)
}

// Reduce is an incremental grouping operator: it caches each key's input
// multiset, and for keys touched by a diff batch recomputes the
// reduction, emitting a retraction of the previous result and an
// insertion of the new one.
type Reduce[K comparable, V comparable, O comparable] struct {
	groups map[K]Multiset[V]
	out    map[K]O
	has    map[K]bool
	// f reduces a non-empty group; ok=false suppresses output (e.g. an
	// empty group after deletions).
	f func(K, Multiset[V]) (O, bool)

	// Work counts records inspected during recomputation.
	Work int64
}

// NewReduce builds a reduce with reduction function f.
func NewReduce[K comparable, V comparable, O comparable](f func(K, Multiset[V]) (O, bool)) *Reduce[K, V, O] {
	return &Reduce[K, V, O]{
		groups: map[K]Multiset[V]{},
		out:    map[K]O{},
		has:    map[K]bool{},
		f:      f,
	}
}

// Update consumes input diffs and emits output diffs for dirty keys.
func (r *Reduce[K, V, O]) Update(dv []Diff[KV[K, V]]) []Diff[KV[K, O]] {
	dirty := map[K]struct{}{}
	for _, d := range dv {
		g := r.groups[d.Rec.Key]
		if g == nil {
			g = Multiset[V]{}
			r.groups[d.Rec.Key] = g
		}
		g.Apply(Diff[V]{d.Rec.Val, d.Delta})
		if len(g) == 0 {
			delete(r.groups, d.Rec.Key)
		}
		dirty[d.Rec.Key] = struct{}{}
	}
	var out []Diff[KV[K, O]]
	for k := range dirty {
		var nv O
		ok := false
		if g, exists := r.groups[k]; exists && len(g) > 0 {
			r.Work += int64(len(g))
			nv, ok = r.f(k, g)
		}
		if r.has[k] {
			if ok && nv == r.out[k] {
				continue // unchanged
			}
			out = append(out, Diff[KV[K, O]]{KV[K, O]{k, r.out[k]}, -1})
		}
		if ok {
			out = append(out, Diff[KV[K, O]]{KV[K, O]{k, nv}, +1})
			r.out[k] = nv
			r.has[k] = true
		} else {
			delete(r.out, k)
			delete(r.has, k)
		}
	}
	return out
}

// MapDiffs applies a stateless transform to a diff batch.
func MapDiffs[T comparable, O comparable](ds []Diff[T], f func(T) O) []Diff[O] {
	acc := map[O]int{}
	for _, d := range ds {
		acc[f(d.Rec)] += d.Delta
	}
	return compact(acc)
}

// compact turns an accumulator into a diff slice, dropping zero deltas.
func compact[O comparable](acc map[O]int) []Diff[O] {
	out := make([]Diff[O], 0, len(acc))
	for rec, delta := range acc {
		if delta != 0 {
			out = append(out, Diff[O]{rec, delta})
		}
	}
	return out
}
