// Package graphbolt is a Go implementation of GraphBolt
// (Mariappan & Vora, EuroSys 2019): dependency-driven synchronous
// processing of streaming graphs. It executes iterative graph algorithms
// under Bulk Synchronous Parallel semantics and keeps their results up
// to date across edge/vertex insertions and deletions by refining
// tracked aggregation values instead of recomputing — while guaranteeing
// the refined results equal a from-scratch run on the mutated graph.
//
// # Quick start
//
//	g, _ := graphbolt.BuildGraph(4, []graphbolt.Edge{{From: 0, To: 1, Weight: 1}})
//	eng, _ := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{})
//	eng.Run()                                            // initial computation
//	eng.ApplyBatch(graphbolt.Batch{Add: []graphbolt.Edge{{From: 1, To: 2, Weight: 1}}})
//	ranks := eng.Values()                                // up to date for the new snapshot
//
// Values returns the value slice of the engine's atomically published
// ResultSnapshot: it is immutable, safe to read from any goroutine while
// later batches are applied, and shared by every reader of that
// generation — treat it as read-only, or call eng.CopyValues() (or
// snapshot.CopyValues()) for an owned slice.
//
// # Serving
//
// For concurrent workloads, wrap the engine in a Server: Submit feeds a
// single-writer ingest loop through a bounded, coalescing queue, while
// any number of goroutines read consistent snapshots lock-free:
//
//	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{})
//	srv.Submit(ctx, batch)                               // async ingest
//	srv.Query(func(s *graphbolt.ResultSnapshot[float64]) {
//		_ = s.Values[3]                                  // consistent at s.Generation
//	})
//	srv.Close(ctx)                                       // drain and stop
//
// Algorithms are expressed against the incremental programming model of
// the paper (§3.3): an aggregation operator ⊕ with incremental
// counterparts ⊎ (Propagate), ⋃- (Retract) and ⋃△ (PropagateDelta), and
// a vertex function ∮ (Compute). Seven algorithms ship in the box:
// PageRank, Label Propagation, CoEM, Belief Propagation, Collaborative
// Filtering, SSSP/BFS/Connected Components (non-decomposable min), and
// an incremental Triangle Counter.
package graphbolt

import (
	"cmp"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kickstarter"
	"repro/internal/partition"
	"repro/internal/qcache"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Graph re-exports the immutable CSR+CSC snapshot type.
type Graph = graph.Graph

// Edge is a directed weighted edge.
type Edge = graph.Edge

// Batch is an atomic set of edge insertions and deletions.
type Batch = graph.Batch

// ApplyResult reports what a batch actually changed.
type ApplyResult = graph.ApplyResult

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// Engine is the streaming BSP engine, generic over vertex value V and
// aggregation A.
type Engine[V, A any] = core.Engine[V, A]

// Program is the incremental programming model algorithms implement.
type Program[V, A any] = core.Program[V, A]

// DeltaProgram marks single-pass change-in-contribution support.
type DeltaProgram[V, A any] = core.DeltaProgram[V, A]

// PullProgram marks non-decomposable aggregations (min/max).
type PullProgram = core.PullProgram

// Options configures an Engine.
type Options = core.Options

// Stats reports per-call work.
type Stats = core.Stats

// Mode selects the execution strategy.
type Mode = core.Mode

// Execution modes (see the paper's evaluation, §5.1).
const (
	// ModeGraphBolt is dependency-driven incremental processing.
	ModeGraphBolt = core.ModeGraphBolt
	// ModeGraphBoltRP forces retract+propagate transitive updates.
	ModeGraphBoltRP = core.ModeGraphBoltRP
	// ModeReset restarts with selective scheduling on mutation (GB-Reset).
	ModeReset = core.ModeReset
	// ModeLigra restarts with full recomputation on mutation.
	ModeLigra = core.ModeLigra
	// ModeNaive reuses values without refinement (incorrect; Table 1).
	ModeNaive = core.ModeNaive
)

// NewEngine constructs an engine for a program over a snapshot.
func NewEngine[V, A any](g *Graph, p Program[V, A], opts Options) (*Engine[V, A], error) {
	return core.NewEngine[V, A](g, p, opts)
}

// BuildGraph constructs a snapshot from an edge list with n vertices.
func BuildGraph(n int, edges []Edge) (*Graph, error) { return graph.Build(n, edges) }

// LoadGraph reads a "from to [weight]" edge list.
func LoadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// LoadGraphFile reads an edge-list file from disk.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// SaveGraph writes the snapshot as an edge list.
func SaveGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Algorithm constructors (Table 4 of the paper).
var (
	// NewPageRank returns damped PageRank (simple sum aggregation).
	NewPageRank = algorithms.NewPageRank
	// NewPersonalizedPageRank returns source-biased PageRank.
	NewPersonalizedPageRank = algorithms.NewPersonalizedPageRank
	// NewKatz returns Katz centrality (attenuated path counting).
	NewKatz = algorithms.NewKatz
	// NewLabelProp returns Label Propagation over F labels with seeds.
	NewLabelProp = algorithms.NewLabelProp
	// NewCoEM returns Co-Training Expectation Maximization.
	NewCoEM = algorithms.NewCoEM
	// NewBeliefProp returns loopy Belief Propagation (complex product).
	NewBeliefProp = algorithms.NewBeliefProp
	// NewCollabFilter returns ALS collaborative filtering (complex pair).
	NewCollabFilter = algorithms.NewCollabFilter
	// NewSSSP returns single-source shortest paths (non-decomposable min).
	NewSSSP = algorithms.NewSSSP
	// NewBFS returns hop distances (non-decomposable min).
	NewBFS = algorithms.NewBFS
	// NewConnectedComponents returns min-label components.
	NewConnectedComponents = algorithms.NewConnectedComponents
	// NewTriangleCounter returns the incremental triangle counter.
	NewTriangleCounter = algorithms.NewTriangleCounter
	// NewKickStarterSSSP returns the KickStarter-style baseline engine.
	NewKickStarterSSSP = kickstarter.NewSSSP
)

// Algorithm value/aggregation type aliases, for spelling engine type
// parameters.
type (
	// PageRankEngine runs PageRank (V = A = float64).
	PageRankEngine = core.Engine[float64, float64]
	// CoEMAgg is CoEM's pair aggregate.
	CoEMAgg = algorithms.CoEMAgg
	// CFAgg is collaborative filtering's ⟨Gram matrix, vector⟩ aggregate.
	CFAgg = algorithms.CFAgg
)

// DurableEngine wraps an Engine with a write-ahead log and periodic
// checkpoints: every batch is journaled before it mutates memory, and
// OpenDurable recovers the exact pre-crash state from disk.
type DurableEngine[V, A any] = durable.Engine[V, A]

// DurableOptions configures journaling and checkpoint cadence.
type DurableOptions = durable.Options

// RecoveryInfo reports how OpenDurable reconstructed engine state.
type RecoveryInfo = durable.RecoveryInfo

// WALOptions configures the write-ahead log (sync policy).
type WALOptions = wal.Options

// SyncPolicy selects when journal appends reach stable storage.
type SyncPolicy = wal.SyncPolicy

// Journal sync policies.
const (
	// SyncEveryBatch fsyncs after every batch (no acknowledged batch is
	// ever lost; the default).
	SyncEveryBatch = wal.SyncEveryBatch
	// SyncInterval fsyncs at most once per WALOptions.Interval.
	SyncInterval = wal.SyncInterval
	// SyncNone leaves flushing to the OS (clean-shutdown durability only).
	SyncNone = wal.SyncNone
)

// OpenDurable wraps a freshly constructed engine with durability backed
// by dir, recovering any checkpoint and journal a previous process left
// there. See the durable package docs for the recovery protocol.
func OpenDurable[V, A any](eng *Engine[V, A], dir string, opts DurableOptions) (*DurableEngine[V, A], error) {
	return durable.Open(eng, dir, opts)
}

// ShardedDurableEngine is a set of per-shard durable engines sharing
// one partitioner: shard s journals and checkpoints the sub-stream it
// owns under its own directory, independently of its siblings, so a
// storage fault on one shard degrades only that shard and recovery
// replays per shard. Serve it with NewShardedDurableServer.
type ShardedDurableEngine[V, A any] struct {
	pt     *partition.Partitioner
	shards []*DurableEngine[V, A]
}

// OpenShardedDurable splits eng's base graph into shards by
// destination-vertex ownership and wraps each shard in its own durable
// engine rooted at dir/shard-NNNN, recovering whatever a previous
// process left in each. eng must be freshly constructed (same program,
// options and base graph as the original run) and not have Run yet,
// exactly as OpenDurable requires — it only supplies the graph,
// program and options; serving state lives in the per-shard engines.
//
// assign optionally pins vertices to shards (see partition.New). opts
// configures each shard's journal; nil means defaults everywhere, and
// a non-nil func may return different options per shard (fault
// injection on one shard, sync policy by shard, ...).
func OpenShardedDurable[V, A any](eng *Engine[V, A], dir string, shards int, assign map[VertexID]int, opts func(shard int) DurableOptions) (*ShardedDurableEngine[V, A], error) {
	pt, err := partition.New(shards, assign)
	if err != nil {
		return nil, err
	}
	parts, err := pt.SplitGraph(eng.Graph())
	if err != nil {
		return nil, err
	}
	sd := &ShardedDurableEngine[V, A]{pt: pt, shards: make([]*DurableEngine[V, A], shards)}
	for s, g := range parts {
		sub, err := eng.SpawnForGraph(g)
		if err == nil {
			var o DurableOptions
			if opts != nil {
				o = opts(s)
			}
			sd.shards[s], err = durable.Open(sub, filepath.Join(dir, fmt.Sprintf("shard-%04d", s)), o)
		}
		if err != nil {
			for _, d := range sd.shards[:s] {
				d.Close()
			}
			return nil, fmt.Errorf("graphbolt: sharded durable: shard %d: %w", s, err)
		}
	}
	return sd, nil
}

// Shards returns the shard count.
func (sd *ShardedDurableEngine[V, A]) Shards() int { return len(sd.shards) }

// Shard returns shard s's durable engine, for inspection (Recovery,
// Seq, Checkpoint). Writes must go through the server.
func (sd *ShardedDurableEngine[V, A]) Shard(s int) *DurableEngine[V, A] { return sd.shards[s] }

// Recovery reports how each shard reconstructed its state, indexed by
// shard.
func (sd *ShardedDurableEngine[V, A]) Recovery() []RecoveryInfo {
	out := make([]RecoveryInfo, len(sd.shards))
	for s, d := range sd.shards {
		out[s] = d.Recovery()
	}
	return out
}

// Close closes every shard's journal, returning the first error.
func (sd *ShardedDurableEngine[V, A]) Close() error {
	var first error
	for s, d := range sd.shards {
		if err := d.Close(); err != nil && first == nil {
			first = fmt.Errorf("graphbolt: sharded durable: shard %d: %w", s, err)
		}
	}
	return first
}

// NewShardedDurableServer serves a sharded durable engine set: one
// apply loop per shard journaling into its own WAL, behind the
// partition router's cross-shard barrier and merged snapshot
// publication. ServerOptions.Shards and ShardAssign are taken from sd
// and ignored on opts. Close also closes every shard's journal.
func NewShardedDurableServer[V, A any](sd *ShardedDurableEngine[V, A], opts ServerOptions) (*Server[V, A], error) {
	engines := make([]*core.Engine[V, A], len(sd.shards))
	graphs := make([]*Graph, len(sd.shards))
	appliers := make([]serve.Applier, len(sd.shards))
	for s, d := range sd.shards {
		engines[s] = d.Core()
		graphs[s] = d.Graph()
		appliers[s] = d
	}
	union, err := partition.UnionGraph(graphs)
	if err != nil {
		return nil, fmt.Errorf("graphbolt: sharded durable: %w", err)
	}
	return newShardedServer(engines, appliers, sd.pt, union, sd.Close, opts), nil
}

// Typed failure sentinels, for errors.Is.
var (
	// ErrSnapshotCorrupt reports an unreadable or bit-rotted checkpoint.
	ErrSnapshotCorrupt = core.ErrSnapshotCorrupt
	// ErrSnapshotVersion reports a checkpoint from an incompatible format.
	ErrSnapshotVersion = core.ErrSnapshotVersion
	// ErrInvalidEdge reports a rejected malformed edge (out-of-range
	// endpoint, NaN or infinite weight).
	ErrInvalidEdge = graph.ErrInvalidEdge
	// ErrInvalidBatch tags every batch validation failure — the error
	// names the offending edge's index and endpoints. A server
	// quarantines such batches (see Server.Quarantined) rather than
	// failing; the submitter's ticket carries this sentinel.
	ErrInvalidBatch = graph.ErrInvalidBatch
	// ErrGenerationNotRetained reports a SnapshotAt/Diff generation
	// outside the retained history window.
	ErrGenerationNotRetained = core.ErrGenerationNotRetained
)

// SnapshotDiff reports the vertices whose values changed between two
// retained generations, with before/after values and structural deltas.
type SnapshotDiff[V any] = core.SnapshotDiff[V]

// QueryCache is the per-generation cache memoizing derived reads
// (top-k, per-vertex lookups, histograms) over immutable snapshots.
// Obtain one from Server.Cache; nil is valid and computes uncached.
type QueryCache = qcache.Cache

// VertexValue pairs a vertex with its value in some snapshot, as
// returned by TopK.
type VertexValue[V any] = qcache.VertexValue[V]

// Histogram is a fixed-bin distribution of a snapshot-derived quantity
// (vertex values or out-degrees).
type Histogram = qcache.Histogram

// Re-exported derived-read helpers. Each memoizes its result in the
// given QueryCache (nil computes uncached), keyed on the snapshot's
// generation — snapshots are immutable, so hits never go stale.
var (
	// ValueHistogram bins a float64 snapshot's values into equal-width
	// buckets between the observed finite extremes.
	ValueHistogram = qcache.ValueHistogram
)

// TopK returns the k highest-valued vertices of the snapshot, ties
// broken by ascending vertex id, memoized in c.
func TopK[V cmp.Ordered](c *QueryCache, s *ResultSnapshot[V], k int) []VertexValue[V] {
	return qcache.TopK(c, s, k)
}

// VertexValueAt returns one vertex's value in the snapshot (false when
// the vertex is out of range), memoized in c.
func VertexValueAt[V any](c *QueryCache, s *ResultSnapshot[V], v VertexID) (V, bool) {
	return qcache.Value(c, s, v)
}

// DegreeHistogram bins the snapshot graph's out-degrees into log2
// buckets, memoized in c.
func DegreeHistogram[V any](c *QueryCache, s *ResultSnapshot[V]) *Histogram {
	return qcache.DegreeHistogram(c, s)
}

// Stream re-exports mutation-stream construction.
type Stream = stream.Stream

// StreamConfig configures stream construction.
type StreamConfig = stream.Config

// NewRMATStream generates an RMAT graph and splits it into a base
// snapshot plus mutation batches per the paper's methodology (§5.1).
func NewRMATStream(seed uint64, n, m int, cfg StreamConfig) (*Stream, error) {
	return stream.RMAT(seed, n, m, gen.WeightUniform, cfg)
}

// RMATEdges generates a deterministic skewed edge list.
func RMATEdges(seed uint64, n, m int) []Edge {
	return gen.RMAT(seed, n, m, gen.WeightUniform)
}
