package graphbolt_test

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	graphbolt "repro"
)

func close64(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= eps
}

// valuesChecksum folds a value slice into a single float64 so a reader
// can fingerprint a snapshot at observation time and the test can prove
// the slice was never mutated afterwards (bit-exact comparison).
func valuesChecksum(vals []float64) float64 {
	var sum float64
	for i, v := range vals {
		sum += v * float64(i+1)
	}
	return sum
}

// observedSnap is one snapshot a reader goroutine saw mid-stream,
// together with the checksum it computed at observation time.
type observedSnap struct {
	snap *graphbolt.ResultSnapshot[float64]
	sum  float64
}

// TestServerConcurrentReadersStress is the BSP-consistency stress test:
// 8 reader goroutines hammer Snapshot/Query while 50+ mutation batches
// stream through Submit. Every snapshot any reader observes must be
// internally consistent (values sized to its own graph, generation
// monotonic per reader) and — the paper's §2.2 guarantee — equal to a
// from-scratch run on that snapshot's graph. Run under -race.
func TestServerConcurrentReadersStress(t *testing.T) {
	const (
		readers = 8
		maxIter = 8
		eps     = 1e-6
	)
	st, err := graphbolt.NewRMATStream(7, 96, 1200, graphbolt.StreamConfig{
		BatchSize:      12,
		DeleteFraction: 0.25,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Batches) < 50 {
		t.Fatalf("stream too short for stress test: %d batches", len(st.Batches))
	}
	eng, err := graphbolt.NewEngine[float64, float64](st.Base, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: maxIter})
	if err != nil {
		t.Fatal(err)
	}
	var applies, applied atomic.Int64
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{
		OnApply: func(ap graphbolt.Applied) {
			applies.Add(1)
			applied.Add(int64(ap.Batches))
		},
	})

	var (
		mu       sync.Mutex
		observed = map[uint64]observedSnap{}
		done     = make(chan struct{})
		wg       sync.WaitGroup
	)
	record := func(s *graphbolt.ResultSnapshot[float64]) {
		sum := valuesChecksum(s.Values)
		mu.Lock()
		if _, ok := observed[s.Generation]; !ok {
			observed[s.Generation] = observedSnap{snap: s, sum: sum}
		}
		mu.Unlock()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var s *graphbolt.ResultSnapshot[float64]
				if r%2 == 0 {
					s = srv.Snapshot()
				} else {
					srv.Query(func(q *graphbolt.ResultSnapshot[float64]) { s = q })
				}
				if s == nil {
					t.Error("reader observed nil snapshot")
					return
				}
				if s.Generation < lastGen {
					t.Errorf("reader %d: generation went backwards: %d after %d",
						r, s.Generation, lastGen)
					return
				}
				lastGen = s.Generation
				if len(s.Values) != s.Graph.NumVertices() {
					t.Errorf("reader %d: torn snapshot at gen %d: %d values for %d vertices",
						r, s.Generation, len(s.Values), s.Graph.NumVertices())
					return
				}
				record(s)
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}(r)
	}

	// Pin the pre-stream generation from the main goroutine: on a busy
	// one-core machine the readers may not be scheduled until every
	// batch has already applied, and the distinct-generation floor
	// below must not depend on that scheduler race.
	record(srv.Snapshot())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, b := range st.Batches {
		if _, err := srv.Submit(ctx, b); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	final, err := srv.Sync(ctx)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	record(final)
	close(done)
	wg.Wait()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	if got := applied.Load(); got != int64(len(st.Batches)) {
		t.Fatalf("applied %d of %d submitted batches", got, len(st.Batches))
	}
	if applies.Load() > int64(len(st.Batches)) {
		t.Fatalf("more apply calls (%d) than batches (%d)", applies.Load(), len(st.Batches))
	}
	if len(observed) < 2 {
		t.Fatalf("readers observed only %d distinct generations", len(observed))
	}

	gens := make([]uint64, 0, len(observed))
	for g := range observed {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	t.Logf("observed %d distinct generations out of %d apply calls (%d batches coalesced)",
		len(observed), applies.Load(), len(st.Batches))

	for _, g := range gens {
		o := observed[g]
		if got := valuesChecksum(o.snap.Values); got != o.sum {
			t.Fatalf("gen %d: snapshot values mutated after publication (checksum %v, was %v)",
				g, got, o.sum)
		}
		fresh, err := graphbolt.NewEngine[float64, float64](o.snap.Graph, graphbolt.NewPageRank(),
			graphbolt.Options{Mode: graphbolt.ModeReset, MaxIterations: maxIter})
		if err != nil {
			t.Fatalf("gen %d: fresh engine: %v", g, err)
		}
		fresh.Run()
		want := fresh.Values()
		for v := range want {
			if !close64(o.snap.Values[v], want[v], eps) {
				t.Fatalf("gen %d: vertex %d: served %v, from-scratch %v",
					g, v, o.snap.Values[v], want[v])
			}
		}
	}
}

// TestServerSubmitWait checks the synchronous path: SubmitWait returns a
// snapshot whose generation covers the submitted batch and whose values
// reflect it.
func TestServerSubmitWait(t *testing.T) {
	g, err := graphbolt.BuildGraph(4, []graphbolt.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{})
	gen0 := srv.Generation()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := srv.SubmitWait(ctx, graphbolt.Batch{
		Add: []graphbolt.Edge{{From: 2, To: 3, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation <= gen0 {
		t.Fatalf("generation did not advance: %d -> %d", gen0, snap.Generation)
	}
	if snap.Graph.NumEdges() != 3 {
		t.Fatalf("snapshot graph has %d edges, want 3", snap.Graph.NumEdges())
	}
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Reads stay valid after Close; writes are refused.
	if got := srv.Snapshot(); got == nil || got.Generation != snap.Generation {
		t.Fatalf("post-close snapshot lost: %+v", got)
	}
	if _, err := srv.Submit(ctx, graphbolt.Batch{}); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// TestServerWaitContext checks that Wait respects its context when the
// requested generation never arrives.
func TestServerWaitContext(t *testing.T) {
	g, err := graphbolt.BuildGraph(3, []graphbolt.Edge{{From: 0, To: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := srv.Wait(ctx, srv.Generation()+100); err != context.DeadlineExceeded {
		t.Fatalf("wait returned %v, want deadline exceeded", err)
	}
	if err := srv.Close(nil); err != nil {
		t.Fatal(err)
	}
	// Waiting past close for an unreachable generation fails cleanly.
	if _, err := srv.Wait(context.Background(), srv.Generation()+100); err == nil {
		t.Fatal("wait after close for unreachable generation succeeded")
	}
}

// TestDurableServer checks the journaled path: batches submitted through
// the server are journaled inside the apply loop, so a reopen after
// Close recovers the exact served state.
func TestDurableServer(t *testing.T) {
	dir := t.TempDir()
	build := func() (*graphbolt.Engine[float64, float64], error) {
		g, err := graphbolt.BuildGraph(6, []graphbolt.Edge{
			{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
			{From: 2, To: 3, Weight: 1},
		})
		if err != nil {
			return nil, err
		}
		return graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(),
			graphbolt.Options{MaxIterations: 6})
	}
	eng, err := build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := graphbolt.OpenDurable(eng, dir, graphbolt.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := graphbolt.NewDurableServer(d, graphbolt.ServerOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	batches := []graphbolt.Batch{
		{Add: []graphbolt.Edge{{From: 3, To: 4, Weight: 1}}},
		{Add: []graphbolt.Edge{{From: 4, To: 5, Weight: 1}}},
		{Del: []graphbolt.Edge{{From: 0, To: 1}}},
	}
	for _, b := range batches {
		if _, err := srv.Submit(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := srv.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}

	eng2, err := build()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := graphbolt.OpenDurable(eng2, dir, graphbolt.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Core().Graph().NumEdges() != snap.Graph.NumEdges() {
		t.Fatalf("recovered %d edges, served snapshot had %d",
			d2.Core().Graph().NumEdges(), snap.Graph.NumEdges())
	}
	rec := d2.Values()
	if len(rec) != len(snap.Values) {
		t.Fatalf("recovered %d values, want %d", len(rec), len(snap.Values))
	}
	for v := range rec {
		if !close64(rec[v], snap.Values[v], 1e-9) {
			t.Fatalf("vertex %d: recovered %v, served %v", v, rec[v], snap.Values[v])
		}
	}
}
