package graphbolt

import (
	"net/http"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/replica"
)

// Replication: WAL shipping over HTTP. A leader publishes its journal
// through a ReplicationLog; any number of read-only followers tail it,
// replay the records into their own engines, and serve the same
// generation-g snapshots at a bounded, observable lag. See the
// "Replication" section in README.md and the BSP-lag note in DESIGN.md.
//
// Leader wiring:
//
//	rlog := graphbolt.NewReplicationLog(graphbolt.ReplicationLogOptions{
//		CheckpointSeq: graphbolt.CheckpointDir(dir).CheckpointSeq,
//	})
//	d, _ := graphbolt.OpenDurable(eng, dir, graphbolt.DurableOptions{OnRecord: rlog.Append})
//	rlog.SetFloor(d.Recovery().SnapshotSeq)
//	srv := graphbolt.NewDurableServer(d, graphbolt.ServerOptions{DisableCoalescing: true})
//	mux.Handle("GET /v1/wal", rlog.Handler())
//	mux.Handle("GET /v1/checkpoint", graphbolt.CheckpointHandler(d))
//	mux.Handle("/v1/", graphbolt.QueryHandler(srv))
//
// DisableCoalescing matters: with coalescing on, one journal record can
// cover several submitted batches, which is fine for durability but
// breaks the one-record-per-generation bookkeeping the lag metrics and
// SnapshotAt parity arguments rely on.
//
// Follower wiring (also available as `graphbolt -follow <leader-url>`):
//
//	f, _ := graphbolt.NewDurableFollower(d, "http://leader:8080", graphbolt.FollowerOptions{})
//	f.Start(ctx)
//	mux.Handle("/v1/", graphbolt.FollowerQueryHandler(f))

// ReplicationLog is the leader-side record store and stream server.
type ReplicationLog = replica.Log

// ReplicationLogOptions configures a ReplicationLog.
type ReplicationLogOptions = replica.LogOptions

// NewReplicationLog builds an empty replication log. Feed it with
// DurableOptions.OnRecord (which also backfills the records replayed
// from the local WAL at open) and mount Handler on the leader's mux.
func NewReplicationLog(opts ReplicationLogOptions) *ReplicationLog {
	return replica.NewLog(opts)
}

// Follower tails a leader's replication stream into a local engine and
// serves the same read API; direct writes fail with ErrFollower.
type Follower[V, A any] = replica.Follower[V, A]

// FollowerOptions configures a Follower.
type FollowerOptions = replica.FollowerOptions

// RecordApplier is the follower's replay sink (a DurableEngine, or the
// in-memory adapter from NewEngineApplier).
type RecordApplier = replica.RecordApplier

// NewFollower builds an in-memory follower over eng. ap may be nil (a
// fresh in-memory applier is used). The follower starts from the
// applier's sequence position and resumes there across reconnects.
func NewFollower[V, A any](eng *Engine[V, A], ap RecordApplier, leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	return replica.NewFollower(eng, ap, leaderURL, opts)
}

// NewDurableFollower builds a follower that re-journals every streamed
// record into d before applying it, so a restart resumes from disk at
// the exact sequence number it last acked.
func NewDurableFollower[V, A any](d *DurableEngine[V, A], leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	return replica.NewDurableFollower(d, leaderURL, opts)
}

// NewEngineApplier adapts a bare engine as a RecordApplier for
// in-memory followers (sequence position starts at 0).
func NewEngineApplier[V, A any](eng *Engine[V, A]) RecordApplier {
	return replica.NewEngineApplier(eng)
}

// RegisterReplicaMetrics pre-creates the graphbolt_replica_* series in
// reg, the way EnableMetrics does for the process-wide registry — for
// callers assembling a registry by hand.
func RegisterReplicaMetrics(reg *obs.Registry) { replica.RegisterMetrics(reg) }

// Checkpoint shipping: the re-seed path that lets a follower survive
// leader compaction. When a follower's resume position falls below the
// replication log's floor (HTTP 410, ErrReplicationLogCompacted), it
// fetches the leader's newest on-disk checkpoint from /v1/checkpoint,
// installs it through the same validated recovery path OpenDurable
// uses, and resumes the WAL stream from the checkpoint's sequence.
//
// Leader wiring (alongside the /v1/wal mount above):
//
//	rlog := graphbolt.NewReplicationLog(graphbolt.ReplicationLogOptions{
//		CheckpointSeq: d.CheckpointSeq, // 410 bodies advertise the checkpoint
//	})
//	mux.Handle("GET /v1/checkpoint", graphbolt.CheckpointHandler(d))

// CheckpointSource serves the newest on-disk checkpoint; a
// *DurableEngine is one, and CheckpointDir adapts a bare directory.
type CheckpointSource = replica.CheckpointSource

// CheckpointFile is an open, header-verified checkpoint ready to
// stream; callers must Close it.
type CheckpointFile = durable.CheckpointFile

// CheckpointDir adapts a durable directory (no open engine needed) as
// a CheckpointSource — e.g. to serve checkpoints from a leader process
// that owns the directory.
type CheckpointDir = durable.CheckpointDir

// CheckpointInstaller is the re-seed sink: a RecordApplier that can
// atomically replace its state with a shipped checkpoint. Both the
// durable and in-memory appliers implement it.
type CheckpointInstaller = replica.CheckpointInstaller

// CompactedResponse is the JSON body of a 410 replication-stream
// response: the log floor plus whether (and through which sequence) a
// checkpoint can bridge the gap.
type CompactedResponse = replica.CompactedResponse

// CheckpointSeqHeader is the response header carrying the checkpoint's
// covered sequence number on /v1/checkpoint responses.
const CheckpointSeqHeader = replica.SeqHeader

// DefaultStallTimeout is the follower's default stream-stall watchdog
// threshold (FollowerOptions.StallTimeout).
const DefaultStallTimeout = replica.DefaultStallTimeout

// CheckpointHandler serves GET /v1/checkpoint from src: the newest
// checkpoint streamed with ETag and CheckpointSeqHeader, 404 until one
// exists.
func CheckpointHandler(src CheckpointSource) http.Handler {
	return replica.CheckpointHandler(src)
}

var (
	// ErrFollower reports a write submitted to a read-only follower;
	// Submit wraps it in a *RetryableError, so RetryAfter works on it.
	ErrFollower = replica.ErrFollower
	// ErrReplicationLogCompacted reports a follower resume position the
	// leader's replication log no longer covers (HTTP 410 on the stream).
	ErrReplicationLogCompacted = replica.ErrLogCompacted
	// ErrOutOfOrder reports a replayed record whose sequence number is
	// not exactly one past the engine's last applied batch.
	ErrOutOfOrder = durable.ErrOutOfOrder
	// ErrNoCheckpoint reports a checkpoint request against a leader that
	// has not written one yet (HTTP 404 on /v1/checkpoint).
	ErrNoCheckpoint = durable.ErrNoCheckpoint
	// ErrCheckpointStale reports a shipped checkpoint whose sequence does
	// not advance the installer — installing it would rewind state.
	ErrCheckpointStale = durable.ErrCheckpointStale
	// ErrStreamStalled reports a replication connection dropped by the
	// follower's stall watchdog after StallTimeout of silence.
	ErrStreamStalled = replica.ErrStreamStalled
)
