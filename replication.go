package graphbolt

import (
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/replica"
)

// Replication: WAL shipping over HTTP. A leader publishes its journal
// through a ReplicationLog; any number of read-only followers tail it,
// replay the records into their own engines, and serve the same
// generation-g snapshots at a bounded, observable lag. See the
// "Replication" section in README.md and the BSP-lag note in DESIGN.md.
//
// Leader wiring:
//
//	rlog := graphbolt.NewReplicationLog(graphbolt.ReplicationLogOptions{})
//	d, _ := graphbolt.OpenDurable(eng, dir, graphbolt.DurableOptions{OnRecord: rlog.Append})
//	rlog.SetFloor(d.Recovery().SnapshotSeq)
//	srv := graphbolt.NewDurableServer(d, graphbolt.ServerOptions{DisableCoalescing: true})
//	mux.Handle("/v1/wal", rlog.Handler())
//	mux.Handle("/v1/", graphbolt.QueryHandler(srv))
//
// DisableCoalescing matters: with coalescing on, one journal record can
// cover several submitted batches, which is fine for durability but
// breaks the one-record-per-generation bookkeeping the lag metrics and
// SnapshotAt parity arguments rely on.
//
// Follower wiring (also available as `graphbolt -follow <leader-url>`):
//
//	f, _ := graphbolt.NewDurableFollower(d, "http://leader:8080", graphbolt.FollowerOptions{})
//	f.Start(ctx)
//	mux.Handle("/v1/", graphbolt.FollowerQueryHandler(f))

// ReplicationLog is the leader-side record store and stream server.
type ReplicationLog = replica.Log

// ReplicationLogOptions configures a ReplicationLog.
type ReplicationLogOptions = replica.LogOptions

// NewReplicationLog builds an empty replication log. Feed it with
// DurableOptions.OnRecord (which also backfills the records replayed
// from the local WAL at open) and mount Handler on the leader's mux.
func NewReplicationLog(opts ReplicationLogOptions) *ReplicationLog {
	return replica.NewLog(opts)
}

// Follower tails a leader's replication stream into a local engine and
// serves the same read API; direct writes fail with ErrFollower.
type Follower[V, A any] = replica.Follower[V, A]

// FollowerOptions configures a Follower.
type FollowerOptions = replica.FollowerOptions

// RecordApplier is the follower's replay sink (a DurableEngine, or the
// in-memory adapter from NewEngineApplier).
type RecordApplier = replica.RecordApplier

// NewFollower builds an in-memory follower over eng. ap may be nil (a
// fresh in-memory applier is used). The follower starts from the
// applier's sequence position and resumes there across reconnects.
func NewFollower[V, A any](eng *Engine[V, A], ap RecordApplier, leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	return replica.NewFollower(eng, ap, leaderURL, opts)
}

// NewDurableFollower builds a follower that re-journals every streamed
// record into d before applying it, so a restart resumes from disk at
// the exact sequence number it last acked.
func NewDurableFollower[V, A any](d *DurableEngine[V, A], leaderURL string, opts FollowerOptions) (*Follower[V, A], error) {
	return replica.NewDurableFollower(d, leaderURL, opts)
}

// NewEngineApplier adapts a bare engine as a RecordApplier for
// in-memory followers (sequence position starts at 0).
func NewEngineApplier[V, A any](eng *Engine[V, A]) RecordApplier {
	return replica.NewEngineApplier(eng)
}

// RegisterReplicaMetrics pre-creates the graphbolt_replica_* series in
// reg, the way EnableMetrics does for the process-wide registry — for
// callers assembling a registry by hand.
func RegisterReplicaMetrics(reg *obs.Registry) { replica.RegisterMetrics(reg) }

var (
	// ErrFollower reports a write submitted to a read-only follower;
	// Submit wraps it in a *RetryableError, so RetryAfter works on it.
	ErrFollower = replica.ErrFollower
	// ErrReplicationLogCompacted reports a follower resume position the
	// leader's replication log no longer covers (HTTP 410 on the stream).
	ErrReplicationLogCompacted = replica.ErrLogCompacted
	// ErrOutOfOrder reports a replayed record whose sequence number is
	// not exactly one past the engine's last applied batch.
	ErrOutOfOrder = durable.ErrOutOfOrder
)
