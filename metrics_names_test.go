package graphbolt_test

import (
	"slices"
	"sort"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/qcache"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/wal"
)

// Golden list of every metric name the subsystem RegisterMetrics
// functions create, per kind. Renaming or dropping a series is a
// breaking change for dashboards and alert rules scraping the
// exposition endpoint; adding one should be a deliberate edit here.
var (
	goldenCounters = []string{
		"graphbolt_admission_decisions_total",
		"graphbolt_admission_shed_total",
		"graphbolt_checkpoints_total",
		"graphbolt_engine_batches_total",
		"graphbolt_engine_edge_computations_total",
		"graphbolt_engine_hybrid_edge_computations_total",
		"graphbolt_engine_hybrid_iterations_total",
		"graphbolt_engine_hybrid_switches_total",
		"graphbolt_engine_initial_edge_computations_total",
		"graphbolt_engine_iterations_total",
		"graphbolt_engine_refine_edge_computations_total",
		"graphbolt_engine_refine_iterations_total",
		"graphbolt_engine_runs_total",
		"graphbolt_engine_vertex_computations_total",
		"graphbolt_flight_dropped_total",
		"graphbolt_flight_dumps_total",
		"graphbolt_flight_events_total",
		"graphbolt_flight_slow_batches_total",
		"graphbolt_health_transitions_total",
		"graphbolt_parallel_chunk_claims_total",
		"graphbolt_parallel_inline_loops_total",
		"graphbolt_parallel_loops_total",
		"graphbolt_parallel_worker_launches_total",
		"graphbolt_qcache_evictions_total",
		"graphbolt_qcache_hits_total",
		"graphbolt_qcache_misses_total",
		"graphbolt_recoveries_total",
		"graphbolt_recovery_replayed_records_total",
		"graphbolt_recovery_skipped_records_total",
		"graphbolt_replica_records_streamed_total",
		"graphbolt_replica_reseeds_total",
		"graphbolt_replica_resumes_total",
		"graphbolt_replica_stalls_total",
		"graphbolt_serve_applied_batches_total",
		"graphbolt_serve_apply_errors_total",
		"graphbolt_serve_coalesced_batches_total",
		"graphbolt_serve_quarantined_batches_total",
		"graphbolt_serve_queries_total",
		"graphbolt_serve_recoveries_total",
		"graphbolt_serve_recovery_attempts_total",
		"graphbolt_serve_rejected_batches_total",
		"graphbolt_serve_submitted_batches_total",
		"graphbolt_serve_watchdog_stalls_total",
		"graphbolt_shard_cross_batches_total",
		"graphbolt_shard_single_batches_total",
		"graphbolt_wal_append_bytes_total",
		"graphbolt_wal_appends_total",
		"graphbolt_wal_recovered_records_total",
		"graphbolt_wal_truncated_bytes_total",
	}
	goldenGauges = []string{
		"graphbolt_admission_backlog_edges",
		"graphbolt_admission_batch_cap_edges",
		"graphbolt_admission_estimated_wait_seconds",
		"graphbolt_admission_throughput_edges_per_second",
		"graphbolt_engine_retained_generations",
		"graphbolt_engine_snapshot_generation",
		"graphbolt_engine_tracked_snapshot_bytes",
		"graphbolt_engine_tracked_snapshots",
		"graphbolt_health_state",
		"graphbolt_qcache_bytes",
		"graphbolt_qcache_entries",
		"graphbolt_replica_lag_generations",
		"graphbolt_replica_lag_seconds",
		"graphbolt_serve_quarantine_size",
		"graphbolt_serve_queue_depth",
		"graphbolt_serve_stuck_applies",
		"graphbolt_shard_count",
		"graphbolt_shard_merged_generation",
		"graphbolt_shard_queue_depth",
		"graphbolt_wal_size_bytes",
	}
	goldenHistograms = []string{
		"graphbolt_checkpoint_seconds",
		"graphbolt_engine_batch_duration_seconds",
		"graphbolt_engine_run_duration_seconds",
		"graphbolt_parallel_worker_utilization",
		"graphbolt_replica_checkpoint_fetch_seconds",
		"graphbolt_serve_queue_wait_seconds",
		"graphbolt_serve_read_staleness_seconds",
		"graphbolt_serve_recovery_backoff_seconds",
		"graphbolt_shard_barrier_wait_seconds",
		"graphbolt_wal_fsync_seconds",
	}
)

// TestRegisteredMetricNamesGolden registers every subsystem's metric
// set into one fresh registry — the same pre-registration EnableMetrics
// performs — and diffs the resulting names against the golden lists.
func TestRegisteredMetricNamesGolden(t *testing.T) {
	reg := obs.NewRegistry()
	admission.RegisterMetrics(reg)
	core.RegisterMetrics(reg)
	wal.RegisterMetrics(reg)
	durable.RegisterMetrics(reg)
	serve.RegisterMetrics(reg)
	qcache.RegisterMetrics(reg)
	health.RegisterMetrics(reg)
	flight.RegisterMetrics(reg)
	partition.RegisterMetrics(reg)
	replica.RegisterMetrics(reg)
	parallel.SetMetrics(reg)
	defer parallel.SetMetrics(nil)

	snap := reg.Snapshot()
	check := func(kind string, got map[string]bool, want []string) {
		t.Helper()
		names := make([]string, 0, len(got))
		for name := range got {
			names = append(names, name)
		}
		sort.Strings(names)
		if !slices.Equal(names, want) {
			t.Errorf("%s names changed:\n got  %q\n want %q\n(update the golden list if this rename/addition is intentional)",
				kind, names, want)
		}
	}
	counters := make(map[string]bool, len(snap.Counters))
	for name := range snap.Counters {
		counters[name] = true
	}
	gauges := make(map[string]bool, len(snap.Gauges))
	for name := range snap.Gauges {
		gauges[name] = true
	}
	histograms := make(map[string]bool, len(snap.Histograms))
	for name := range snap.Histograms {
		histograms[name] = true
	}
	check("counter", counters, goldenCounters)
	check("gauge", gauges, goldenGauges)
	check("histogram", histograms, goldenHistograms)

	// Registration must be idempotent: a second pass may not duplicate
	// or disturb the set.
	core.RegisterMetrics(reg)
	serve.RegisterMetrics(reg)
	if n := len(reg.Snapshot().Counters); n != len(goldenCounters) {
		t.Errorf("%d counters after re-registration, want %d", n, len(goldenCounters))
	}
}
