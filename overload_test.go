package graphbolt_test

import (
	"context"
	"errors"
	"log/slog"
	"sort"
	"sync"
	"testing"
	"time"

	graphbolt "repro"
	"repro/internal/admission"
	"repro/internal/gen"
	"repro/internal/stream"
)

// TestOverloadSoak drives an open-loop burst — a producer submitting as
// fast as it can, far beyond the apply loop's throughput — against a
// server with admission control and asserts the overload contract end
// to end:
//
//   - queue waits stay bounded: the p99 queue wait across every apply
//     call is within grace of the SLO, because admission sheds the work it cannot
//     start within the budget instead of queueing it;
//   - shed submissions fail fast with ErrOverloaded wrapped in a
//     *RetryableError carrying a positive RetryAfter hint;
//   - the adaptive coalescing governor both widens the batch cap under
//     backlog and narrows it once drained, observed through the
//     graphbolt_admission_batch_cap_edges gauge;
//   - health walks Healthy → Overloaded → Healthy, never Degraded or
//     Failed;
//   - the final values equal a from-scratch ModeReset run over exactly
//     the admitted batches — shedding never corrupts the BSP guarantee.
//
// Run it under the race detector via `make overload`; -short shrinks
// the warmup and shed quota for CI.
func TestOverloadSoak(t *testing.T) {
	warmup, cooldown, shedTarget := 20, 14, 40
	if testing.Short() {
		warmup, cooldown, shedTarget = 10, 10, 8
	}
	const (
		nVerts   = 1000
		slo      = 400 * time.Millisecond
		maxBurst = 40000
	)

	edges := gen.RMAT(99, nVerts, 16000, gen.WeightUniform)
	strm, err := stream.FromEdges(nVerts, edges, stream.Config{BatchSize: 16, DeleteFraction: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(strm.Batches) == 0 {
		t.Fatal("stream yielded no batches")
	}
	// The burst may need more batches than the stream holds: cycle. The
	// graph is a multigraph, so re-adding an edge is a distinct instance
	// and the ModeReset baseline replays the identical admitted list.
	batchAt := func(i int) graphbolt.Batch { return strm.Batches[i%len(strm.Batches)] }

	eng, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(),
		graphbolt.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}

	var (
		waitMu    sync.Mutex
		waits     []time.Duration
		applyErrs []error
	)
	reg := graphbolt.NewMetricsRegistry()
	srv := graphbolt.NewServer(eng, graphbolt.ServerOptions{
		// Deep queue (in batches) so the SLO binds long before the queue
		// bound: this soak is about shedding, not Block backpressure.
		QueueDepth:    1 << 15,
		MaxBatchEdges: 256, // seeds the adaptive cap; floats from here
		Admission: &graphbolt.AdmissionOptions{
			SLO:        slo,
			FloorEdges: 64,
			CeilEdges:  8192,
			// Extra margin under the race detector and noisy CI: fill
			// only 60% of the SLO so realized waits clear it with room.
			Headroom: 0.6,
		},
		Metrics: reg,
		Logger:  slog.New(slog.DiscardHandler),
		OnApply: func(ap graphbolt.Applied) {
			waitMu.Lock()
			waits = append(waits, ap.QueueWait)
			if ap.Err != nil {
				applyErrs = append(applyErrs, ap.Err)
			}
			waitMu.Unlock()
		},
	})

	type hop struct{ from, to graphbolt.HealthState }
	var (
		hopMu sync.Mutex
		hops  []hop
	)
	srv.Health().OnTransition(func(from, to graphbolt.HealthState, cause error) {
		hopMu.Lock()
		hops = append(hops, hop{from, to})
		hopMu.Unlock()
	})

	capGauge := func() float64 { return reg.Snapshot().Gauges[admission.MetricBatchCap] }

	ctx := context.Background()
	var admitted []graphbolt.Batch
	idx := 0
	totalSheds := 0 // every producer-observed shed, all phases

	// submitClosed is the well-behaved closed-loop producer: on a shed
	// it honors the hint and resubmits (a slow machine can push a single
	// apply's duration into the budget transiently); anything else fails.
	submitClosed := func(label string, i int) {
		t.Helper()
		b := batchAt(idx)
		for {
			_, err := srv.SubmitWait(ctx, b)
			if err == nil {
				admitted = append(admitted, b)
				idx++
				return
			}
			if after, ok := graphbolt.RetryAfter(err); ok {
				totalSheds++
				time.Sleep(after)
				continue
			}
			t.Fatalf("%s submit %d: %v", label, i, err)
		}
	}

	// Warmup, closed loop at zero backlog: the throughput EWMA converges
	// on the engine's real apply rate before the burst leans on it.
	for i := 0; i < warmup; i++ {
		submitClosed("warmup", i)
	}

	// Burst, open loop: submit with no pacing for a sustained wall-clock
	// window (and at least until shedTarget sheds), so the backlog keeps
	// refilling to the budget at the controller's CURRENT rate estimate
	// as coalescing pushes it up — that sustained pressure is what makes
	// the governor widen the cap. Every refusal must carry the full
	// retryable shape. A shed batch is retried on the next iteration
	// (idx does not advance), mimicking a producer that
	// drops-and-regenerates.
	burstDur := 2 * time.Second
	if testing.Short() {
		burstDur = time.Second
	}
	capBefore := capGauge()
	capPeak := capBefore
	sheds := 0
	burstEnd := time.Now().Add(burstDur)
	for i := 0; (time.Now().Before(burstEnd) || sheds < shedTarget) && i < maxBurst; i++ {
		if i%32 == 0 {
			if c := capGauge(); c > capPeak {
				capPeak = c
			}
		}
		b := batchAt(idx)
		_, err := srv.Submit(ctx, b)
		if err == nil {
			admitted = append(admitted, b)
			idx++
			continue
		}
		if !errors.Is(err, graphbolt.ErrOverloaded) {
			t.Fatalf("burst submit %d failed with %v, want ErrOverloaded", i, err)
		}
		var re *graphbolt.RetryableError
		if !errors.As(err, &re) || re.After <= 0 {
			t.Fatalf("shed error lacks a positive RetryAfter: %#v", err)
		}
		if after, ok := graphbolt.RetryAfter(err); !ok || after != re.After {
			t.Fatalf("RetryAfter(err) = %v, %v; want %v, true", after, ok, re.After)
		}
		sheds++
		totalSheds++
	}
	if sheds < shedTarget {
		t.Fatalf("open-loop burst of %d submissions shed only %d times, want %d", maxBurst, sheds, shedTarget)
	}
	if got := srv.Admission().Shed(); got != int64(totalSheds) {
		t.Fatalf("controller counted %d sheds, producer saw %d", got, totalSheds)
	}

	// Drain, still sampling the cap gauge: the governor must have
	// widened the cap at some point while the backlog was deep.
	drainDeadline := time.Now().Add(60 * time.Second)
	for srv.QueueDepth() > 0 {
		if c := capGauge(); c > capPeak {
			capPeak = c
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("queue never drained: depth %d", srv.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Sync(ctx); err != nil {
		t.Fatalf("sync after burst: %v", err)
	}
	if c := capGauge(); c > capPeak {
		capPeak = c
	}
	if capPeak <= capBefore {
		t.Fatalf("cap gauge never widened: before burst %v, peak %v", capBefore, capPeak)
	}

	// Cooldown, closed loop again: with the backlog gone the governor
	// narrows the cap back down.
	for i := 0; i < cooldown; i++ {
		submitClosed("cooldown", i)
	}
	if capAfter := capGauge(); capAfter >= capPeak {
		t.Fatalf("cap gauge never narrowed: peak %v, after cooldown %v", capPeak, capAfter)
	}

	// Health walked Healthy → Overloaded → Healthy and nothing else.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Health().State() != graphbolt.HealthHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("server did not return to Healthy: %+v", srv.Health().Info())
		}
		time.Sleep(time.Millisecond)
	}
	hopMu.Lock()
	var entered, left bool
	for _, h := range hops {
		switch {
		case h.from == graphbolt.HealthHealthy && h.to == graphbolt.HealthOverloaded:
			entered = true
		case h.from == graphbolt.HealthOverloaded && h.to == graphbolt.HealthHealthy:
			left = true
		default:
			t.Fatalf("unexpected health transition %v -> %v", h.from, h.to)
		}
	}
	hopMu.Unlock()
	if !entered || !left {
		t.Fatalf("health transitions missing overload round-trip: %v", hops)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("loop reported terminal failure: %v", err)
	}

	// Bounded waits: p99 queue wait within grace of the SLO across every
	// apply. Admission bounds the *estimated* backlog to Headroom×SLO
	// (240ms); the realized wait exceeds that exactly by how far the
	// throughput EWMA mis-predicted, and on a loaded single-core runner
	// a mid-burst stall can realize 2-3× the estimate. The grace covers
	// that measurement noise; a genuine admission failure admits the
	// whole 40000-batch burst into the 2^15-deep queue and realizes
	// waits of tens of seconds, far past slo+grace either way.
	waitMu.Lock()
	if len(applyErrs) != 0 {
		t.Fatalf("%d applies failed, first: %v", len(applyErrs), applyErrs[0])
	}
	allWaits := append([]time.Duration(nil), waits...)
	waitMu.Unlock()
	if len(allWaits) == 0 {
		t.Fatal("no applies recorded")
	}
	sort.Slice(allWaits, func(i, j int) bool { return allWaits[i] < allWaits[j] })
	p99 := allWaits[len(allWaits)*99/100]
	if grace := slo; p99 >= slo+grace {
		t.Fatalf("p99 queue wait %v >= SLO %v + grace %v (max %v over %d applies)",
			p99, slo, grace, allWaits[len(allWaits)-1], len(allWaits))
	}

	finalSnap := srv.Snapshot()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// BSP equivalence over exactly the admitted batches: a from-scratch
	// ModeReset run that never saw the burst or the sheds must agree.
	fresh, err := graphbolt.NewEngine[float64, float64](strm.Base, graphbolt.NewPageRank(),
		graphbolt.Options{Mode: graphbolt.ModeReset, MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run()
	for i, b := range admitted {
		if _, err := fresh.ApplyBatch(b); err != nil {
			t.Fatalf("baseline batch %d: %v", i+1, err)
		}
	}
	valuesClose(t, finalSnap.Values, fresh.Values(), 1e-6, "admitted stream vs from-scratch")
}
