// Benchmarks regenerating the paper's evaluation (§5): one benchmark per
// table and figure, each delegating to the shared driver in
// internal/exps, plus micro-benchmarks of the operations the evaluation
// is built from. Run the full suite with
//
//	go test -bench=. -benchmem
//
// and the publication-shaped reports with cmd/graphbolt-bench.
package graphbolt_test

import (
	"io"
	"testing"

	graphbolt "repro"
	"repro/internal/exps"
)

// benchScale keeps each driver invocation in benchmark-friendly
// territory; cmd/graphbolt-bench runs the full-size reports.
const benchScale = 0.1

func benchExperiment(b *testing.B, name string) {
	e, ok := exps.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := exps.Config{Scale: benchScale, Iterations: 10, Seed: 42, Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1NaiveError measures the Table 1 driver: error growth of
// naive value reuse across 10 LP mutation batches.
func BenchmarkTable1NaiveError(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure2WalkThrough measures the 5-vertex correctness
// demonstration.
func BenchmarkFigure2WalkThrough(b *testing.B) { benchExperiment(b, "figure2") }

// BenchmarkFigure4Stabilization measures the per-iteration change-count
// trace that motivates pruning.
func BenchmarkFigure4Stabilization(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkTable5Systems measures the full Ligra / GB-Reset / GraphBolt
// sweep across algorithms, graphs and batch sizes.
func BenchmarkTable5Systems(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFigure6EdgeComputations measures the work-ratio sweep.
func BenchmarkFigure6EdgeComputations(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkTable6Parallelism measures the YH-scale GOMAXPROCS contrast.
func BenchmarkTable6Parallelism(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7YahooWork measures GraphBolt's absolute edge
// computations on the largest graph.
func BenchmarkTable7YahooWork(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkFigure7BatchSweep measures the 1-to-1M batch-size sweep.
func BenchmarkFigure7BatchSweep(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkTable8HiLoWorkloads measures degree-targeted mutation
// workloads.
func BenchmarkTable8HiLoWorkloads(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkFigure8DifferentialDataflow measures PageRank against the
// mini differential-dataflow runtime.
func BenchmarkFigure8DifferentialDataflow(b *testing.B) { benchExperiment(b, "figure8") }

// BenchmarkFigure8bSingleEdgeVariance measures 100 single-edge mutations
// on GraphBolt and DD.
func BenchmarkFigure8bSingleEdgeVariance(b *testing.B) { benchExperiment(b, "figure8b") }

// BenchmarkFigure9SSSP measures KickStarter vs GraphBolt vs DD on
// shortest paths.
func BenchmarkFigure9SSSP(b *testing.B) { benchExperiment(b, "figure9") }

// BenchmarkTable9Memory measures the dependency-store footprint
// accounting.
func BenchmarkTable9Memory(b *testing.B) { benchExperiment(b, "table9") }

// --- Micro-benchmarks of the primitives the evaluation exercises ---

func benchGraph(b *testing.B) (*graphbolt.Graph, graphbolt.Batch) {
	b.Helper()
	s, err := graphbolt.NewRMATStream(42, 8192, 131072, graphbolt.StreamConfig{BatchSize: 1000, NumBatches: 1})
	if err != nil {
		b.Fatal(err)
	}
	return s.Base, s.Batches[0]
}

// BenchmarkInitialPageRank measures the tracked initial computation.
func BenchmarkInitialPageRank(b *testing.B) {
	g, _ := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _ := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{MaxIterations: 10})
		eng.Run()
	}
}

// BenchmarkApplyBatchPageRank measures one refined mutation batch per
// mode — the headline operation of the system.
func BenchmarkApplyBatchPageRank(b *testing.B) {
	for _, mode := range []graphbolt.Mode{graphbolt.ModeGraphBolt, graphbolt.ModeGraphBoltRP, graphbolt.ModeReset, graphbolt.ModeLigra} {
		b.Run(mode.String(), func(b *testing.B) {
			g, batch := benchGraph(b)
			eng, _ := graphbolt.NewEngine[float64, float64](g, graphbolt.NewPageRank(), graphbolt.Options{
				Mode: mode, MaxIterations: 10,
			})
			eng.Run()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ApplyBatch(batch)
			}
		})
	}
}

// BenchmarkGraphApply measures the two-pass CSR/CSC structural mutation
// of §4.1 in isolation.
func BenchmarkGraphApply(b *testing.B) {
	g, batch := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Apply(batch)
	}
}

// BenchmarkTriangleApply measures the locally incremental triangle
// counter against a batch.
func BenchmarkTriangleApply(b *testing.B) {
	g, batch := benchGraph(b)
	tc := graphbolt.NewTriangleCounter(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Apply(batch)
	}
}

// BenchmarkKickStarterApply measures the dependence-tree SSSP engine.
func BenchmarkKickStarterApply(b *testing.B) {
	g, batch := benchGraph(b)
	ks := graphbolt.NewKickStarterSSSP(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ks.ApplyBatch(batch)
	}
}

// BenchmarkAblation measures the design-choice ablations (pruning
// settings, delta vs retract+propagate).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkTagFraction measures the §2.2 tag-propagation comparison.
func BenchmarkTagFraction(b *testing.B) { benchExperiment(b, "tagfrac") }
